#include "crawler/crawler.hpp"

#include <algorithm>
#include <stdexcept>

#include "crawler/apk.hpp"
#include "crawler/json.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace appstore::crawlersim {

namespace {
constexpr std::string_view kComponent = "crawler";
}

std::chrono::milliseconds decorrelated_backoff(std::chrono::milliseconds base,
                                               std::chrono::milliseconds cap,
                                               std::chrono::milliseconds previous,
                                               util::Rng& rng) {
  const auto upper = std::min(cap, previous * 3);
  if (upper <= base) return base;
  const auto span = static_cast<std::uint64_t>((upper - base).count());
  return base + std::chrono::milliseconds(
                    static_cast<std::chrono::milliseconds::rep>(rng.below(span + 1)));
}

Crawler::Crawler(CrawlerOptions options, CrawlDatabase& database)
    : options_(std::move(options)),
      database_(database),
      proxies_(options_.proxy_count, options_.proxy_regions) {
  net::CircuitBreaker::Options breaker_options = options_.breaker;
  if (breaker_options.clock == nullptr) breaker_options.clock = options_.clock;
  breakers_.reserve(proxies_.size());
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    breakers_.push_back(std::make_unique<net::CircuitBreaker>(breaker_options));
  }
  const std::size_t workers = std::max<std::size_t>(1, options_.threads);
  clients_.resize(workers * proxies_.size());
  if (options_.metrics != nullptr) {
    obs::Registry& registry = *options_.metrics;
    registry.describe("crawler_requests_total", "HTTP exchanges completed (incl. retries)");
    registry.describe("crawler_retries_total", "Fetch attempts beyond the first");
    registry.describe("crawler_breaker_open_total",
                      "Per-proxy circuit breaker open transitions");
    registry.describe("crawler_pages_total", "Directory pages enumerated");
    registry.describe("crawler_apps_observed_total", "App statistics pages recorded");
    registry.describe("crawler_apk_bytes_total", "Bytes of APK payload downloaded");
    registry.describe("crawler_responses_total", "Non-200 responses by cause");
    registry.describe("crawler_fetch_seconds", "Wall time of one fetch (incl. retries)");
    metrics_.requests = &registry.counter("crawler_requests_total");
    metrics_.retries = &registry.counter("crawler_retries_total");
    metrics_.breaker_open = &registry.counter("crawler_breaker_open_total");
    metrics_.pages = &registry.counter("crawler_pages_total");
    metrics_.apps = &registry.counter("crawler_apps_observed_total");
    metrics_.apk_bytes = &registry.counter("crawler_apk_bytes_total");
    metrics_.by_status[0] = &registry.counter("crawler_responses_total", "429");
    metrics_.by_status[1] = &registry.counter("crawler_responses_total", "403");
    metrics_.by_status[2] = &registry.counter("crawler_responses_total", "5xx");
    metrics_.by_status[3] = &registry.counter("crawler_responses_total", "404");
    metrics_.fetch_seconds = &registry.histogram("crawler_fetch_seconds");
  }
}

net::PersistentHttpClient& Crawler::client_for(std::size_t worker, std::size_t proxy_index) {
  auto& client = clients_.at(worker * proxies_.size() + proxy_index);
  if (!client) {
    client = std::make_unique<net::PersistentHttpClient>(
        options_.host, options_.port,
        net::ClientOptions{.clock = options_.clock, .faults = options_.faults});
  }
  return *client;
}

std::optional<std::size_t> Crawler::pick_allowed(util::Rng& rng, bool& pool_empty) {
  pool_empty = false;
  for (std::size_t tries = 0; tries < proxies_.size(); ++tries) {
    const auto index = proxies_.pick(rng);
    if (!index.has_value()) {
      pool_empty = true;
      return std::nullopt;
    }
    if (breakers_[*index]->allow()) return index;
  }
  return std::nullopt;  // every pick landed on a cooling-off proxy
}

std::optional<std::string> Crawler::fetch(const std::string& target, CrawlStats& stats,
                                          std::size_t worker) {
  const obs::ScopedTimer timer(metrics_.fetch_seconds);
  // Deterministic per-target randomness: proxy picks and backoff draws come
  // from a generator derived from (crawl seed, target) — never from a
  // stream shared across targets — so a parallel crawl makes the same
  // decisions for this target under any thread schedule.
  util::Rng rng(util::rng::derive_seed(options_.seed, util::hash64(target)));
  const auto base = options_.rate_limit_backoff;
  const auto cap = base * options_.backoff_cap_multiplier;
  auto previous = base;
  std::chrono::milliseconds slept{0};

  const auto backoff = [&]() -> bool {
    const auto delay = decorrelated_backoff(base, cap, previous, rng);
    previous = delay;
    if (slept + delay > options_.retry_budget) {
      util::log_debug(kComponent, "retry budget exhausted for {}", target);
      return false;
    }
    slept += delay;
    chaos::sleep_or_real(options_.clock, delay);
    return true;
  };

  for (std::uint32_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0 && metrics_.retries != nullptr) metrics_.retries->inc();
    bool pool_empty = false;
    const auto proxy_index = pick_allowed(rng, pool_empty);
    if (!proxy_index.has_value()) {
      if (pool_empty) {
        util::log_warn(kComponent, "no healthy proxies left");
        return std::nullopt;
      }
      // Every healthy proxy is cooling off; wait out part of the breaker
      // timeout and try again (consumes an attempt).
      if (!backoff()) return std::nullopt;
      continue;
    }
    const net::Proxy& proxy = proxies_.proxy(*proxy_index);
    net::CircuitBreaker& breaker = *breakers_[*proxy_index];
    try {
      net::Headers headers;
      headers["X-Client-Id"] = proxy.id;
      const net::HttpResponse response =
          client_for(worker, *proxy_index).get(target, std::move(headers));
      ++stats.requests;
      if (metrics_.requests != nullptr) metrics_.requests->inc();

      if (response.status == 200) {
        breaker.record_success();
        proxies_.report_success(*proxy_index);
        return response.body;
      }
      if (response.status == 404) {
        if (metrics_.by_status[3] != nullptr) metrics_.by_status[3]->inc();
        breaker.record_success();
        proxies_.report_success(*proxy_index);
        return std::nullopt;  // not an infrastructure problem
      }
      if (response.status == 429) {
        ++stats.rate_limited;
        if (metrics_.by_status[0] != nullptr) metrics_.by_status[0]->inc();
        // The proxy identity is saturated: the service answered, so the
        // proxy is fine (no breaker/quarantine) — wait for its token
        // bucket to refill, then retry (usually through a different proxy).
        breaker.record_success();
        if (!backoff()) return std::nullopt;
        continue;
      }
      if (response.status == 403) {
        ++stats.region_blocked;
        if (metrics_.by_status[1] != nullptr) metrics_.by_status[1]->inc();
        // Wrong region for this store: a deterministic rejection that will
        // repeat forever — quarantine so the pool converges on usable
        // (e.g. Chinese) proxies, as the paper's setup did.
        breaker.record_success();
        proxies_.report_failure(*proxy_index, 1);
        continue;
      }
      // 5xx: transient infrastructure trouble — the breaker's domain.
      ++stats.transient_failures;
      if (metrics_.by_status[2] != nullptr) metrics_.by_status[2]->inc();
      if (breaker.record_failure()) {
        if (metrics_.breaker_open != nullptr) metrics_.breaker_open->inc();
        util::log_debug(kComponent, "breaker opened for {}", proxy.id);
      }
    } catch (const std::exception& error) {
      ++stats.requests;
      ++stats.transient_failures;
      if (metrics_.requests != nullptr) metrics_.requests->inc();
      if (metrics_.by_status[2] != nullptr) metrics_.by_status[2]->inc();
      if (breaker.record_failure()) {
        if (metrics_.breaker_open != nullptr) metrics_.breaker_open->inc();
        util::log_debug(kComponent, "breaker opened for {}", proxy.id);
      }
      util::log_debug(kComponent, "transport error via {}: {}", proxy.id, error.what());
    }
  }
  return std::nullopt;
}

void Crawler::crawl_app(std::uint32_t id, market::Day day, CrawlStats& stats,
                        std::size_t worker) {
  const auto body = fetch(util::format("/api/app/{}", id), stats, worker);
  if (!body.has_value()) return;
  const auto parsed = parse_json(*body);
  if (!parsed.has_value()) return;

  AppRecord metadata;
  metadata.id = id;
  metadata.name = parsed->at("name").as_string();
  metadata.category = parsed->at("category").as_string();
  metadata.developer = parsed->at("developer").as_string();
  metadata.paid = parsed->at("paid").as_bool();
  metadata.has_ads = parsed->at("has_ads").as_bool();

  AppObservation observation;
  observation.downloads = parsed->at("downloads").as_u64();
  observation.version = static_cast<std::uint32_t>(parsed->at("version").as_u64());
  observation.price_dollars = parsed->at("price").as_number();

  {
    const std::lock_guard lock(database_mutex_);
    database_.record(metadata, day, observation);
  }
  ++stats.apps_observed;
  if (metrics_.apps != nullptr) metrics_.apps->inc();

  // APKs: fetched at most once per (app, version) across all crawl days —
  // the paper's "we download each app version only once". Each app id is
  // owned by exactly one shard, so check-then-record cannot race.
  if (options_.fetch_apks) {
    bool scanned = false;
    {
      const std::lock_guard lock(database_mutex_);
      scanned = database_.apk_scanned(id, observation.version);
    }
    if (!scanned) {
      const auto apk = fetch(util::format("/api/app/{}/apk", id), stats, worker);
      if (apk.has_value()) {
        if (metrics_.apk_bytes != nullptr) metrics_.apk_bytes->inc(apk->size());
        const auto scan = scan_apk(*apk);
        if (scan.has_value()) {
          const std::lock_guard lock(database_mutex_);
          database_.record_apk_scan(id, scan->header.version, scan->has_ads());
          ++stats.apks_fetched;
        }
      }
    }
  }

  if (options_.fetch_comments) {
    std::uint64_t comment_page = 0;
    for (;;) {
      const auto comments_body = fetch(
          util::format("/api/app/{}/comments?page={}", id, comment_page), stats, worker);
      if (!comments_body.has_value()) break;
      const auto comments = parse_json(*comments_body);
      if (!comments.has_value()) break;
      const auto& array = comments->at("comments").as_array();
      stats.comments_observed += array.size();
      const std::uint64_t total = comments->at("total").as_u64();
      ++comment_page;
      if (comment_page * 200 >= total || array.empty()) break;
    }
  }
}

CrawlStats Crawler::crawl_day(market::Day day) {
  const obs::TraceSpan day_span(options_.metrics, "crawl_day");
  CrawlStats stats;

  // 1. Enumerate the directory (serial; pages form one dependent chain).
  std::vector<std::uint32_t> ids;
  {
    const obs::TraceSpan directory_span(options_.metrics, "directory");
    std::uint64_t page = 0;
    for (;;) {
      const auto body = fetch(
          util::format("/api/apps?page={}&per_page={}", page, options_.per_page), stats,
          /*worker=*/0);
      if (!body.has_value()) {
        if (page == 0) throw std::runtime_error("crawl_day: cannot enumerate directory");
        break;
      }
      if (metrics_.pages != nullptr) metrics_.pages->inc();
      const auto parsed = parse_json(*body);
      if (!parsed.has_value()) throw std::runtime_error("crawl_day: bad directory JSON");
      const auto& id_array = parsed->at("ids").as_array();
      for (const auto& id : id_array) {
        ids.push_back(static_cast<std::uint32_t>(id.as_u64()));
      }
      const std::uint64_t total = parsed->at("total").as_u64();
      ++page;
      if (page * options_.per_page >= total || id_array.empty()) break;
    }
  }

  // 2. Fetch per-app statistics, sharded across workers. grain = ceil(n /
  // threads) yields at most `threads` shards, so the shard index doubles as
  // the worker index into the per-worker client sets. Stats are accumulated
  // per shard and summed in shard order — bit-identical for any thread
  // count (the shard boundaries depend only on ids.size() and threads).
  const obs::TraceSpan apps_span(options_.metrics, "apps");
  const std::size_t workers = std::max<std::size_t>(1, options_.threads);
  if (!ids.empty()) {
    std::vector<CrawlStats> shard_stats(workers);
    par::Options par_options;
    par_options.threads = workers;
    par_options.grain = (ids.size() + workers - 1) / workers;
    par::for_shards(ids.size(), par_options,
                    [&](std::size_t begin, std::size_t end, std::size_t shard) {
                      for (std::size_t i = begin; i < end; ++i) {
                        crawl_app(ids[i], day, shard_stats.at(shard), shard);
                      }
                    });
    for (const CrawlStats& shard : shard_stats) {
      stats.requests += shard.requests;
      stats.rate_limited += shard.rate_limited;
      stats.region_blocked += shard.region_blocked;
      stats.transient_failures += shard.transient_failures;
      stats.apps_observed += shard.apps_observed;
      stats.comments_observed += shard.comments_observed;
      stats.apks_fetched += shard.apks_fetched;
    }
  }

  totals_.requests += stats.requests;
  totals_.rate_limited += stats.rate_limited;
  totals_.region_blocked += stats.region_blocked;
  totals_.transient_failures += stats.transient_failures;
  totals_.apps_observed += stats.apps_observed;
  totals_.comments_observed += stats.comments_observed;
  totals_.apks_fetched += stats.apks_fetched;
  return stats;
}

}  // namespace appstore::crawlersim
