// Minimal JSON value type with writer and recursive-descent parser.
//
// The appstore REST service speaks JSON; this covers the full JSON grammar
// (objects, arrays, strings with escapes, numbers, booleans, null) with the
// usual library restrictions: numbers are doubles, object member order is
// preserved, duplicate keys keep the last value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace appstore::crawlersim {

class Json;

using JsonArray = std::vector<Json>;
/// Order-preserving object representation: JSON emitted by the service is
/// diffable, and tests can compare serialized forms directly.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::bad_variant_access on kind mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] std::uint64_t as_u64() const { return static_cast<std::uint64_t>(as_number()); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Member access that throws std::out_of_range when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void write(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Parses a complete JSON document; nullopt on any syntax error or trailing
/// garbage.
[[nodiscard]] std::optional<Json> parse_json(std::string_view text);

/// Builder helpers for terse service code.
[[nodiscard]] Json json_object(JsonObject members);

}  // namespace appstore::crawlersim
