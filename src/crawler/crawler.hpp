// The daily crawler (the "client side" of Fig. 1).
//
// For each crawl day the crawler pages through the store directory and
// fetches every app's statistics page, routing each request through a
// randomly chosen proxy (retrying through another proxy on 429/403/5xx,
// with quarantine after repeated failures) and recording observations into
// a CrawlDatabase. This mirrors the paper's Scrapy + PlanetLab pipeline:
// daily revisits update statistics of known apps and pick up newly added
// apps, expanding the dataset.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crawler/database.hpp"
#include "net/proxy.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace appstore::crawlersim {

/// Aggregate construction options for Crawler (the Options-struct API: new
/// knobs land here without touching the constructor signature).
struct CrawlerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Proxies to rotate over; Chinese stores need kChina proxies available.
  std::size_t proxy_count = 16;
  std::vector<net::Region> proxy_regions = {net::Region::kChina, net::Region::kEurope,
                                            net::Region::kUsa};
  /// Per-request retry budget (each retry uses a fresh proxy).
  std::uint32_t max_attempts = 8;
  /// Initial backoff after a 429 (doubles per retry, capped at 16x). Real
  /// crawls space requests naturally; tests replay whole crawl days
  /// back-to-back, so the crawler must let token buckets refill.
  std::chrono::milliseconds rate_limit_backoff = std::chrono::milliseconds(20);
  std::uint64_t seed = 0xc4aa;
  /// Directory page size used while enumerating apps.
  std::uint64_t per_page = 200;
  /// Also fetch comment pages for apps (needed by the affinity pipeline).
  bool fetch_comments = false;
  /// Also fetch and scan APKs — once per (app, version), as in the paper's
  /// pipeline. Feeds the §6.3 ad-library analysis.
  bool fetch_apks = false;
  /// Optional metrics sink (crawler_* families, trace spans; see
  /// docs/observability.md). Must outlive the crawler.
  obs::Registry* metrics = nullptr;
};

/// Deprecated name for CrawlerOptions (pre-Options-struct API).
using CrawlerConfig = CrawlerOptions;

struct CrawlStats {
  std::uint64_t requests = 0;
  std::uint64_t rate_limited = 0;      ///< 429 responses
  std::uint64_t region_blocked = 0;    ///< 403 responses
  std::uint64_t transient_failures = 0; ///< 5xx responses + transport errors
  std::uint64_t apps_observed = 0;
  std::uint64_t comments_observed = 0;
  std::uint64_t apks_fetched = 0;      ///< new (app, version) APK downloads
};

class Crawler {
 public:
  Crawler(CrawlerOptions options, CrawlDatabase& database);

  /// Crawls the store once for `day` (the service must be set to that day).
  /// Returns per-day statistics; throws std::runtime_error if the directory
  /// cannot be enumerated at all.
  CrawlStats crawl_day(market::Day day);

  [[nodiscard]] const net::ProxyPool& proxies() const noexcept { return proxies_; }
  [[nodiscard]] const CrawlStats& totals() const noexcept { return totals_; }

 private:
  /// Lock-free handles into options_.metrics; all nullptr when disabled.
  struct Metrics {
    obs::Counter* requests = nullptr;        ///< crawler_requests_total
    obs::Counter* retries = nullptr;         ///< crawler_retries_total
    obs::Counter* pages = nullptr;           ///< crawler_pages_total (directory pages)
    obs::Counter* apps = nullptr;            ///< crawler_apps_observed_total
    obs::Counter* apk_bytes = nullptr;       ///< crawler_apk_bytes_total
    obs::Counter* by_status[4] = {};         ///< crawler_responses_total{429,403,5xx,404}
    obs::Histogram* fetch_seconds = nullptr; ///< crawler_fetch_seconds
  };

  /// One GET with proxy rotation and bounded retries. Returns the body on
  /// HTTP 200, nullopt when attempts are exhausted or the target 404s.
  [[nodiscard]] std::optional<std::string> fetch(const std::string& target,
                                                 CrawlStats& stats);

  /// One persistent connection per proxy identity (the paper's crawlers
  /// similarly kept sessions per PlanetLab node); lazily opened.
  [[nodiscard]] net::PersistentHttpClient& client_for(std::size_t proxy_index);

  CrawlerOptions options_;
  CrawlDatabase& database_;
  net::ProxyPool proxies_;
  util::Rng rng_;
  CrawlStats totals_;
  Metrics metrics_;
  std::vector<std::unique_ptr<net::PersistentHttpClient>> clients_;
};

}  // namespace appstore::crawlersim
