// The daily crawler (the "client side" of Fig. 1).
//
// For each crawl day the crawler pages through the store directory and
// fetches every app's statistics page, routing each request through a
// randomly chosen proxy (retrying through another proxy on 429/403/5xx)
// and recording observations into a CrawlDatabase. This mirrors the
// paper's Scrapy + PlanetLab pipeline: daily revisits update statistics of
// known apps and pick up newly added apps, expanding the dataset.
//
// Failure handling has two tiers, matching the two failure shapes the
// paper's crawlers saw:
//  - ProxyPool quarantine for deterministic rejections (a region-blocked
//    proxy 403s forever — drop it so the pool converges on usable proxies);
//  - a per-proxy net::CircuitBreaker for transient trouble (5xx, transport
//    errors): the proxy is skipped while its breaker is open and probed
//    again after a cool-off.
// Retries back off with seeded decorrelated jitter and respect a cumulative
// retry budget per fetch.
//
// Determinism: with `threads > 1` the per-app phase runs on appstore_par
// shards, and every random decision (proxy picks, backoff draws) comes from
// a generator derived from (crawl seed, request target) — never from a
// shared stream — so a crawl produces bit-identical results for any thread
// count, with or without injected faults (see tests/robustness_test.cpp).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "crawler/database.hpp"
#include "net/breaker.hpp"
#include "net/proxy.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace appstore::crawlersim {

/// Aggregate construction options for Crawler (the Options-struct API: new
/// knobs land here without touching the constructor signature).
struct CrawlerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Proxies to rotate over; Chinese stores need kChina proxies available.
  std::size_t proxy_count = 16;
  std::vector<net::Region> proxy_regions = {net::Region::kChina, net::Region::kEurope,
                                            net::Region::kUsa};
  /// Per-request retry budget (each retry uses a fresh proxy).
  std::uint32_t max_attempts = 8;
  /// Base backoff after a 429 or while every proxy's breaker is open. Real
  /// crawls space requests naturally; tests replay whole crawl days
  /// back-to-back, so the crawler must let token buckets refill.
  std::chrono::milliseconds rate_limit_backoff = std::chrono::milliseconds(20);
  /// Backoff delays are drawn with decorrelated jitter from
  /// [rate_limit_backoff, rate_limit_backoff * backoff_cap_multiplier].
  std::uint32_t backoff_cap_multiplier = 16;
  /// Cumulative backoff budget for one fetch; once spent, the fetch gives
  /// up even if attempts remain (bounds worst-case latency per target).
  std::chrono::milliseconds retry_budget = std::chrono::milliseconds(10000);
  std::uint64_t seed = 0xc4aa;
  /// Directory page size used while enumerating apps.
  std::uint64_t per_page = 200;
  /// Worker threads for the per-app phase (directory enumeration is
  /// serial). Results are bit-identical across thread counts.
  std::size_t threads = 1;
  /// Also fetch comment pages for apps (needed by the affinity pipeline).
  bool fetch_comments = false;
  /// Also fetch and scan APKs — once per (app, version), as in the paper's
  /// pipeline. Feeds the §6.3 ad-library analysis.
  bool fetch_apks = false;
  /// Per-proxy circuit breaker tuning; failure_threshold 0 disables the
  /// breakers. The breaker clock defaults to `clock` when unset.
  net::CircuitBreaker::Options breaker;
  /// Time source for backoff sleeps and breaker timeouts (nullptr = real
  /// time). Robustness tests pass a chaos::VirtualClock so backoff-heavy
  /// crawls replay in microseconds. Must outlive the crawler.
  chaos::Clock* clock = nullptr;
  /// Optional fault seam handed to every HTTP client (see
  /// net::ClientOptions). Must outlive the crawler.
  chaos::FaultInjector* faults = nullptr;
  /// Optional metrics sink (crawler_* families, trace spans; see
  /// docs/observability.md). Must outlive the crawler.
  obs::Registry* metrics = nullptr;
};

/// Deprecated name for CrawlerOptions (pre-Options-struct API).
using CrawlerConfig = CrawlerOptions;

struct CrawlStats {
  std::uint64_t requests = 0;
  std::uint64_t rate_limited = 0;      ///< 429 responses
  std::uint64_t region_blocked = 0;    ///< 403 responses
  std::uint64_t transient_failures = 0; ///< 5xx responses + transport errors
  std::uint64_t apps_observed = 0;
  std::uint64_t comments_observed = 0;
  std::uint64_t apks_fetched = 0;      ///< new (app, version) APK downloads

  friend bool operator==(const CrawlStats&, const CrawlStats&) = default;
};

/// AWS-style decorrelated-jitter backoff: the next delay is drawn uniformly
/// from [base, min(cap, 3 * previous)]. Jitter decorrelates retry bursts
/// from many clients; deriving `rng` from the crawl seed and target keeps
/// the schedule deterministic (tests/robustness_test.cpp asserts it).
[[nodiscard]] std::chrono::milliseconds decorrelated_backoff(std::chrono::milliseconds base,
                                                             std::chrono::milliseconds cap,
                                                             std::chrono::milliseconds previous,
                                                             util::Rng& rng);

class Crawler {
 public:
  Crawler(CrawlerOptions options, CrawlDatabase& database);

  /// Crawls the store once for `day` (the service must be set to that day).
  /// Returns per-day statistics; throws std::runtime_error if the directory
  /// cannot be enumerated at all.
  CrawlStats crawl_day(market::Day day);

  [[nodiscard]] const net::ProxyPool& proxies() const noexcept { return proxies_; }
  [[nodiscard]] const CrawlStats& totals() const noexcept { return totals_; }

  /// The circuit breaker guarding proxy `index` (for tests and reports).
  [[nodiscard]] const net::CircuitBreaker& breaker(std::size_t index) const {
    return *breakers_.at(index);
  }

 private:
  /// Lock-free handles into options_.metrics; all nullptr when disabled.
  struct Metrics {
    obs::Counter* requests = nullptr;        ///< crawler_requests_total
    obs::Counter* retries = nullptr;         ///< crawler_retries_total
    obs::Counter* breaker_open = nullptr;    ///< crawler_breaker_open_total
    obs::Counter* pages = nullptr;           ///< crawler_pages_total (directory pages)
    obs::Counter* apps = nullptr;            ///< crawler_apps_observed_total
    obs::Counter* apk_bytes = nullptr;       ///< crawler_apk_bytes_total
    obs::Counter* by_status[4] = {};         ///< crawler_responses_total{429,403,5xx,404}
    obs::Histogram* fetch_seconds = nullptr; ///< crawler_fetch_seconds
  };

  /// One GET with proxy rotation, breaker-aware picks, and jittered bounded
  /// retries. Returns the body on HTTP 200, nullopt when the retry/attempt
  /// budget is exhausted or the target 404s. `worker` selects the client
  /// set; calls for one target must not run concurrently.
  [[nodiscard]] std::optional<std::string> fetch(const std::string& target,
                                                 CrawlStats& stats, std::size_t worker);

  /// Pool pick that skips proxies whose breaker is open; nullopt when no
  /// pick is currently possible (sets `pool_empty` when the pool itself has
  /// no healthy proxy, a permanent condition).
  [[nodiscard]] std::optional<std::size_t> pick_allowed(util::Rng& rng, bool& pool_empty);

  /// Fetches one app's statistics page (and optionally APK + comments) and
  /// records it; runs concurrently across shards.
  void crawl_app(std::uint32_t id, market::Day day, CrawlStats& stats, std::size_t worker);

  /// One persistent connection per (worker, proxy identity) — workers never
  /// share a client, so the per-proxy sessions of the paper's setup remain
  /// single-threaded objects; lazily opened.
  [[nodiscard]] net::PersistentHttpClient& client_for(std::size_t worker,
                                                      std::size_t proxy_index);

  CrawlerOptions options_;
  CrawlDatabase& database_;
  net::ProxyPool proxies_;
  std::vector<std::unique_ptr<net::CircuitBreaker>> breakers_;
  CrawlStats totals_;
  Metrics metrics_;
  std::mutex database_mutex_;
  std::vector<std::unique_ptr<net::PersistentHttpClient>> clients_;
};

}  // namespace appstore::crawlersim
