// Wire forms of the query engine: request parsing and response rendering.
//
// /api/v1/query accepts the same query in two shapes:
//
//   GET  ?kind=top_k_downloads&k=10&filter=user==42+and+day<=60
//        (filter in the text grammar of query/expression.hpp; '+' reads as
//        whitespace so the filter survives a URL query string untouched;
//        list parameters are comma-separated: fractions=0.01,0.1)
//
//   POST {"kind": "...", "filter": ..., "k": ..., "fractions": [...],
//         "depths": [...], "min_samples": ..., "points": ...}
//        where "filter" is either the text grammar as a JSON string or a
//        structured tree of {"field","op","value"} leaves nested under
//        {"and": [...]} / {"or": [...]} nodes.
//
// Both parsers produce the same validated query::QuerySpec; every defect
// throws query::QueryError (the service maps it to a 400 envelope, never a
// crash). Rendering is the inverse: one JSON document per QueryResult with
// the plan statistics and the kind-specific payload. See docs/query.md.
#pragma once

#include "crawler/json.hpp"
#include "market/types.hpp"
#include "net/http.hpp"
#include "query/engine.hpp"

namespace appstore::crawlersim {

/// Parses a /api/query request (GET query-string or POST JSON body) into a
/// QuerySpec. Throws query::QueryError("bad_query" / "bad_filter") on any
/// malformed input.
[[nodiscard]] query::QuerySpec parse_query_request(const net::HttpRequest& request);

/// Structured JSON filter -> expression AST (exposed for tests).
[[nodiscard]] query::Expr expr_from_json(const Json& node);

/// Renders one engine result as the response document.
[[nodiscard]] Json query_result_json(const query::QueryResult& result, market::Day day);

/// True when the request asks for the mergeable partial form instead of the
/// finalized answer: GET ?partial=1 (or =true), or a `"partial": true`
/// member in the POST body. The flag lives in the query string / body — not
/// a header — so the per-day response cache (keyed on target + body) keeps
/// partial and finalized answers distinct.
[[nodiscard]] bool wants_partial(const net::HttpRequest& request);

/// Renders a shard's partial aggregate. Counts are [app, count] pairs and
/// affinity samples are [user, comments, value-per-depth...] rows (NaN as
/// null); doubles use %.17g so the fragment round-trips bit-exactly.
[[nodiscard]] Json query_partial_json(const query::PartialAggregate& partial,
                                      market::Day day);

/// Parses a shard's partial-aggregate response body back into the typed
/// form. Throws query::QueryError("bad_partial") on any malformed document.
[[nodiscard]] query::PartialAggregate partial_from_json(const Json& document);

}  // namespace appstore::crawlersim
