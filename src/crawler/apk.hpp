// Synthetic APK artifacts and the ad-library scanner (§6.3).
//
// The paper downloaded every app version's APK once and ran Androguard over
// it to detect libraries from the 20 most popular advertising networks,
// finding ads in 67.7% of free apps. We substitute a deterministic synthetic
// APK: a pseudo-binary blob with a parseable header and an embedded string
// table that contains the app's library names. scan_apk() recovers the ad
// networks by signature search — the same analysis contract Androguard
// provided, exercised end-to-end through the HTTP crawl (the service's
// /api/app/<id>/apk endpoint serves these blobs; the crawler fetches each
// version once, as the paper's pipeline did).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::crawlersim {

/// The simulated top-20 ad-network library signatures (synthetic names; the
/// real list is irrelevant to the analysis, only its size matters).
[[nodiscard]] const std::vector<std::string>& ad_network_signatures();

struct ApkHeader {
  std::uint32_t app_id = 0;
  std::uint32_t version = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t library_count = 0;
};

/// Builds app `app_id`'s APK for `version`. The blob layout is
///   "APK1" | header fields (ASCII, '\n'-separated) | library table |
///   pseudo-random payload (deterministic in app_id+version)
/// `ad_libraries` are embedded verbatim into the library table alongside a
/// few benign library names. `payload_bytes` models the APK body (the paper
/// reports a 3.5 MB average; tests use a few KB).
[[nodiscard]] std::string build_apk(std::uint32_t app_id, std::uint32_t version,
                                    std::span<const std::string> ad_libraries,
                                    std::size_t payload_bytes = 3500);

/// Parses the header; nullopt if the blob is not a synthetic APK.
[[nodiscard]] std::optional<ApkHeader> parse_apk_header(std::string_view blob);

struct ApkScan {
  ApkHeader header;
  /// Ad-network signatures found in the library table.
  std::vector<std::string> ad_libraries;
  [[nodiscard]] bool has_ads() const noexcept { return !ad_libraries.empty(); }
};

/// Scans a blob for the known ad-network signatures (the Androguard
/// substitute). nullopt on malformed blobs.
[[nodiscard]] std::optional<ApkScan> scan_apk(std::string_view blob);

/// Deterministically selects the ad libraries embedded in an app's APK:
/// empty when `has_ads` is false, otherwise 1-3 networks chosen by hash of
/// the app id (stable across versions, as repackaged ad SDKs typically are).
[[nodiscard]] std::vector<std::string> select_ad_libraries(std::uint32_t app_id,
                                                           bool has_ads);

}  // namespace appstore::crawlersim
