// CrawlDatabase persistence: save/load the crawler's observations as CSV.
//
// This is the boundary where real data enters the library: a user with
// their own appstore crawl (any source) can write these two files and run
// every analysis bench against it. Format:
//
//   <dir>/apps.csv          id,name,category,developer,paid,has_ads,first_seen
//   <dir>/observations.csv  app,day,downloads,version,price_dollars
//   <dir>/apk_scans.csv     app,version,ads_found            (optional)
#pragma once

#include <filesystem>

#include "crawler/database.hpp"

namespace appstore::crawlersim {

/// Writes the database under `directory` (created if needed).
void save_database(const CrawlDatabase& database, const std::filesystem::path& directory);

/// Reads a database previously written by save_database (apk_scans.csv may
/// be absent). Throws std::runtime_error on missing required files or
/// malformed content.
[[nodiscard]] CrawlDatabase load_database(const std::filesystem::path& directory);

}  // namespace appstore::crawlersim
