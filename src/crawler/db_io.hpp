// CrawlDatabase persistence: save/load the crawler's observations.
//
// This is the boundary where real data enters the library: a user with
// their own appstore crawl (any source) can write these files and run
// every analysis bench against it. Format:
//
//   <dir>/apps.csv          id,name,category,developer,paid,has_ads,first_seen
//   <dir>/observations.csv  app,day,downloads,version,price_dollars
//   <dir>/observations.bin  columnar fast path (same rows as the CSV)
//   <dir>/apk_scans.csv     app,version,ads_found            (optional)
//
// observations.bin uses the events/binary.hpp layout (magic "AOBS", endian
// tag, version, row count, then raw native-order columns: app u32, day i32,
// downloads u64, version u32, price f64). save_database writes both forms;
// load_database prefers the binary file when present and falls back to CSV,
// so a hand-written CSV-only directory still loads.
//
// Robustness: every file is staged in "<name>.tmp" and renamed into place
// (util::AtomicFile), so a crash — real or injected through IoOptions —
// mid-save never corrupts an existing database directory. The binary loader
// validates the header and the exact payload length and reports defects as
// typed events::binary::LoadError; corrupted input can never crash the
// loader or silently truncate.
#pragma once

#include <filesystem>

#include "crawler/database.hpp"
#include "events/io.hpp"
#include "market/durable.hpp"

namespace appstore::crawlersim {

/// Writes the database under `directory` (created if needed), each file
/// atomically. With an IoOptions fault injector, a kTornWrite decision for a
/// file aborts the save mid-write (chaos::InjectedFault) leaving previously
/// committed files and any pre-existing versions intact.
void save_database(const CrawlDatabase& database, const std::filesystem::path& directory,
                   const events::IoOptions& options = {});

/// Reads a database previously written by save_database (apk_scans.csv and
/// observations.bin may be absent). Throws std::runtime_error — a typed
/// events::binary::LoadError for structural defects in observations.bin —
/// on missing required files or malformed content. `limits` bounds the
/// binary app/day columns with the same typed errors (kAppRange/kDayRange)
/// the AEVL and ALSG loaders report; an observation whose app id is absent
/// from apps.csv is also kAppRange.
[[nodiscard]] CrawlDatabase load_database(const std::filesystem::path& directory,
                                          const events::LoadLimits& limits = {});

/// Wires `database` into a market::DurableStore checkpoint barrier: saves
/// through save_database at each checkpoint, restores through load_database
/// at recovery. Attach before DurableStore::open(); `database` must outlive
/// the store lifecycle. This replaces ad-hoc save_database call sites — the
/// database becomes exactly as durable as the store it crawls.
[[nodiscard]] market::CheckpointComponent database_component(CrawlDatabase& database);

}  // namespace appstore::crawlersim
