#include "crawler/service.hpp"

#include <algorithm>

#include "crawler/apk.hpp"
#include "crawler/json.hpp"
#include "crawler/query_json.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::crawlersim {

namespace {

constexpr std::size_t kMaxPerPage = 500;

/// Bound on cached responses: /api/meta plus directory pages plus distinct
/// query targets — a handful per day in practice; the cap only guards
/// against a pathological client enumerating distinct targets.
constexpr std::size_t kMaxCachedResponses = 4096;

constexpr std::string_view kLegacyPrefix = "/api";
constexpr std::string_view kV1Prefix = "/api/v1";

/// The route table: path remainder (after the version prefix) -> endpoint.
/// Prefix routes match any path continuing past the pattern; /app/<id>
/// sub-routes (comments, apk) are refined by suffix below.
struct Route {
  std::string_view pattern;
  bool exact;
  AppstoreService::Endpoint endpoint;
};

constexpr Route kRoutes[] = {
    {"/meta", true, AppstoreService::Endpoint::kMeta},
    {"/apps", true, AppstoreService::Endpoint::kApps},
    {"/app/", false, AppstoreService::Endpoint::kApp},
    {"/query", true, AppstoreService::Endpoint::kQuery},
    {"/metrics", true, AppstoreService::Endpoint::kMetrics},
};

[[nodiscard]] std::string client_of(const net::HttpRequest& request) {
  const auto it = request.headers.find("X-Client-Id");
  return it == request.headers.end() ? std::string("anonymous") : it->second;
}

[[nodiscard]] bool is_china_client(std::string_view client) {
  // Proxy ids are "proxy-<region>-<n>".
  return client.find("-cn-") != std::string_view::npos;
}

[[nodiscard]] std::string_view reason_for(int status) noexcept {
  switch (status) {
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// The uniform error envelope every non-200 response carries:
/// {"error": {"code", "message", "retry_after_ms"?}}.
[[nodiscard]] net::HttpResponse error_response(int status, std::string_view code,
                                               std::string_view message,
                                               std::int64_t retry_after_ms = -1) {
  JsonObject error;
  error.emplace_back("code", Json(code));
  error.emplace_back("message", Json(message));
  if (retry_after_ms >= 0) error.emplace_back("retry_after_ms", Json(retry_after_ms));
  net::HttpResponse response = net::HttpResponse::json(
      status, json_object({{"error", Json(std::move(error))}}).dump());
  response.reason = std::string(reason_for(status));
  if (retry_after_ms >= 0) {
    response.headers["Retry-After"] =
        std::to_string(std::max<std::int64_t>(1, (retry_after_ms + 999) / 1000));
  }
  return response;
}

}  // namespace

std::string_view to_string(AppstoreService::Endpoint endpoint) noexcept {
  switch (endpoint) {
    case AppstoreService::Endpoint::kMeta: return "meta";
    case AppstoreService::Endpoint::kApps: return "apps";
    case AppstoreService::Endpoint::kApp: return "app";
    case AppstoreService::Endpoint::kComments: return "comments";
    case AppstoreService::Endpoint::kApk: return "apk";
    case AppstoreService::Endpoint::kQuery: return "query";
    case AppstoreService::Endpoint::kMetrics: return "metrics";
    case AppstoreService::Endpoint::kOther: return "other";
  }
  return "?";
}

AppstoreService::RouteMatch AppstoreService::route(std::string_view path) noexcept {
  RouteMatch match;
  std::string_view rest;
  if (path.starts_with(kV1Prefix)) {
    match.versioned = true;
    rest = path.substr(kV1Prefix.size());
  } else if (path.starts_with(kLegacyPrefix)) {
    rest = path.substr(kLegacyPrefix.size());
  } else {
    return match;
  }
  match.api = true;
  for (const Route& entry : kRoutes) {
    const bool hit = entry.exact ? rest == entry.pattern : rest.starts_with(entry.pattern);
    if (!hit) continue;
    match.endpoint = entry.endpoint;
    match.rest = rest.substr(entry.pattern.size());
    if (entry.endpoint == Endpoint::kApp) {
      if (match.rest.ends_with("/comments")) {
        match.endpoint = Endpoint::kComments;
        match.rest.remove_suffix(std::string_view("/comments").size());
      } else if (match.rest.ends_with("/apk")) {
        match.endpoint = Endpoint::kApk;
        match.rest.remove_suffix(std::string_view("/apk").size());
      }
    }
    return match;
  }
  return match;
}

AppstoreService::AppstoreService(const market::AppStore& store, ServicePolicy policy,
                                 std::uint16_t port, net::TokenBucketLimiter::Clock clock)
    : store_(store),
      policy_(policy),
      limiter_(policy.rate_per_second, policy.burst, std::move(clock)),
      failure_state_(policy.failure_seed) {
  registry_.describe("service_requests_total", "Requests by endpoint class");
  registry_.describe("service_request_seconds", "Handler latency by endpoint class");
  registry_.describe("service_injected_failures_total", "Injected 500 responses");
  registry_.describe("service_region_blocked_total", "403 responses (region gating)");
  registry_.describe("service_response_cache_total",
                     "Per-day response cache lookups by outcome");
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const std::string_view label = to_string(static_cast<Endpoint>(i));
    endpoint_requests_[i] = &registry_.counter("service_requests_total", label);
    endpoint_latency_[i] = &registry_.histogram("service_request_seconds", label);
  }
  injected_failures_ = &registry_.counter("service_injected_failures_total");
  region_blocked_ = &registry_.counter("service_region_blocked_total");
  cache_hits_ = &registry_.counter("service_response_cache_total", "hit");
  cache_misses_ = &registry_.counter("service_response_cache_total", "miss");
  limiter_.attach_metrics(registry_);

  query_engine_ = std::make_unique<query::QueryEngine>(store_, policy_.query, &registry_);

  derived_.download_days.resize(store_.apps().size());
  derived_.comment_index.resize(store_.apps().size());
  refresh_derived();

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.metrics = &registry_;
  server_options.clock = policy_.clock;
  server_options.faults = policy_.faults;
  server_options.mode = policy_.server_mode;
  server_options.worker_threads = policy_.server_workers;
  server_options.queue_capacity = policy_.server_queue_capacity;
  server_options.max_connections = policy_.max_connections;
  server_options.admission = policy_.admission;
  // The load-shed 503 is written below the handler; give it the same error
  // envelope every in-handler error uses.
  server_options.shed_body =
      error_response(503, "overloaded", "server busy", 1000).body;
  server_options.shed_content_type = "application/json";
  server_ = std::make_unique<net::HttpServer>(
      server_options, [this](const net::HttpRequest& request) { return handle(request); });
}

void AppstoreService::refresh_derived() const {
  const events::FrontierSnapshot downloads = store_.download_log();
  const events::FrontierSnapshot comments = store_.comment_log();
  {
    const std::shared_lock lock(derived_mutex_);
    if (derived_.download_rows == downloads.size() &&
        derived_.comment_rows == comments.size()) {
      return;
    }
  }
  const std::unique_lock lock(derived_mutex_);
  // Absorb only the rows past the watermarks. Live ingestion appends in
  // (roughly) day order, so the common insert position is the back of the
  // per-app vector; out-of-order days fall back to a sorted insert.
  for (std::uint64_t i = derived_.download_rows; i < downloads.size(); ++i) {
    auto& days = derived_.download_days[downloads.app()[i]];
    const market::Day day = downloads.day()[i];
    if (days.empty() || day >= days.back()) {
      days.push_back(day);
    } else {
      days.insert(std::upper_bound(days.begin(), days.end(), day), day);
    }
  }
  derived_.download_rows = downloads.size();
  for (std::uint64_t i = derived_.comment_rows; i < comments.size(); ++i) {
    derived_.comment_index[comments.app()[i]].push_back(static_cast<std::uint32_t>(i));
  }
  derived_.comment_rows = comments.size();
}

std::uint64_t AppstoreService::downloads_up_to(std::uint32_t app, market::Day day) const {
  const std::shared_lock lock(derived_mutex_);
  const auto& days = derived_.download_days[app];
  return static_cast<std::uint64_t>(
      std::upper_bound(days.begin(), days.end(), day) - days.begin());
}

std::uint32_t AppstoreService::version_up_to(std::uint32_t app, market::Day day) const {
  const auto& updates = store_.apps()[app].update_days;
  return 1 + static_cast<std::uint32_t>(
                 std::upper_bound(updates.begin(), updates.end(), day) - updates.begin());
}

net::HttpResponse AppstoreService::handle(const net::HttpRequest& request) {
  const std::string path = request.path();
  const RouteMatch match = route(path);
  const auto slot = static_cast<std::size_t>(match.endpoint);
  endpoint_requests_[slot]->inc();
  const obs::ScopedTimer timer(endpoint_latency_[slot]);

  net::HttpResponse response = [&] {
    // The metrics endpoint is operational, not part of the simulated store:
    // it bypasses region gating, rate limiting and failure injection so a
    // scrape can never be throttled by (or perturb) the workload under study.
    if (match.endpoint == Endpoint::kMetrics) return handle_metrics(request);

    ServiceRequest context;
    context.http = &request;
    context.endpoint = match.endpoint;
    context.versioned = match.versioned;
    context.rest = match.rest;
    context.day = day_.load(std::memory_order_relaxed);
    context.client = client_of(request);

    if (policy_.china_only && !is_china_client(context.client)) {
      region_blocked_->inc();
      return error_response(403, "region_blocked", "store not served in this region");
    }
    if (!limiter_.allow(context.client)) {
      const auto retry_ms = static_cast<std::int64_t>(
          std::max(1.0, 1000.0 / std::max(policy_.rate_per_second, 1e-9)));
      return error_response(429, "rate_limited", "per-client rate limit exceeded",
                            retry_ms);
    }
    if (policy_.failure_rate > 0.0) {
      // Deterministic per-request failure injection (splitmix64 walk).
      std::uint64_t state = failure_state_.fetch_add(1, std::memory_order_relaxed);
      util::Rng rng(util::splitmix64(state));
      if (rng.chance(policy_.failure_rate)) {
        injected_failures_->inc();
        return error_response(500, "internal", "transient failure (injected)");
      }
    }

    const bool post_allowed = match.endpoint == Endpoint::kQuery;
    if (request.method != "GET" && !(post_allowed && request.method == "POST")) {
      return error_response(405, "method_not_allowed",
                            post_allowed ? "only GET and POST supported"
                                         : "only GET supported");
    }

    switch (match.endpoint) {
      case Endpoint::kMeta:
      case Endpoint::kApps:
      case Endpoint::kQuery: {
        // Canonical cache key: the target minus the version prefix, so the
        // v1 path and its legacy alias share one cached response; a POST
        // query is additionally keyed by its body.
        const std::size_t prefix =
            match.versioned ? kV1Prefix.size() : kLegacyPrefix.size();
        std::string key(std::string_view(request.target).substr(prefix));
        if (request.method == "POST") {
          key += '\n';
          key += request.body;
        }
        return handle_cacheable(context, std::move(key));
      }
      case Endpoint::kApp:
      case Endpoint::kComments:
      case Endpoint::kApk: {
        // These read the derived per-app layout; catch it up to the
        // published frontiers first (fast no-op when nothing ingested).
        refresh_derived();
        std::uint64_t id = 0;
        if (!util::parse_u64(match.rest, id) || id >= store_.apps().size()) {
          return error_response(404, "not_found", "no such app");
        }
        if (match.endpoint == Endpoint::kComments) {
          return handle_comments(static_cast<std::uint32_t>(id), request);
        }
        if (match.endpoint == Endpoint::kApk) {
          return handle_apk(static_cast<std::uint32_t>(id));
        }
        return handle_app(static_cast<std::uint32_t>(id));
      }
      case Endpoint::kMetrics:
      case Endpoint::kOther:
        break;
    }
    return error_response(404, "not_found", "no such endpoint");
  }();

  // Legacy alias: flag deprecation after the cache so cached entries stay
  // canonical and both surfaces share them.
  if (match.api && !match.versioned) {
    response.headers["Deprecation"] = "true";
    response.headers["Link"] =
        util::format("<{}{}>; rel=\"successor-version\"", kV1Prefix,
                     std::string_view(path).substr(kLegacyPrefix.size()));
  }
  return response;
}

void AppstoreService::set_day(market::Day day) {
  // Day boundaries are the durability cadence: checkpoint the closing day
  // before the new one becomes visible, so a crash afterwards recovers at
  // least everything the previous day served. Serving threads are not
  // blocked — the checkpoint reads frontier snapshots.
  if (policy_.durable != nullptr && day > day_.load(std::memory_order_relaxed)) {
    (void)policy_.durable->checkpoint();
  }
  // Publish-only: entries stamped with the old day stop matching, and the
  // next insert for the same key replaces them. Readers are never blocked.
  day_.store(day, std::memory_order_relaxed);
}

net::HttpResponse AppstoreService::handle_cacheable(const ServiceRequest& context,
                                                    std::string key) {
  // These endpoints are pure functions of (target, day, published events) —
  // so identical requests under one (day, ingest epoch) stamp can share one
  // computed response; any publish bumps the epoch and naturally invalidates.
  // The cache sits after the policy gates: rate limiting and region checks
  // are still charged per request.
  const market::Day day = day_.load(std::memory_order_relaxed);
  const std::uint64_t epoch = store_.ingest_epoch();
  if (policy_.cache_responses) {
    const std::shared_lock lock(cache_mutex_);
    const auto it = response_cache_.find(key);
    if (it != response_cache_.end() && it->second.day == day &&
        it->second.epoch == epoch) {
      cache_hits_->inc();
      return it->second.response;
    }
  }
  net::HttpResponse response;
  switch (context.endpoint) {
    case Endpoint::kMeta: response = handle_meta(day); break;
    case Endpoint::kApps: response = handle_apps(*context.http, day); break;
    case Endpoint::kQuery: response = handle_query(context); break;
    default: response = error_response(404, "not_found", "no such endpoint"); break;
  }
  if (policy_.cache_responses) {
    cache_misses_->inc();
    if (response.status == 200) {
      const std::unique_lock lock(cache_mutex_);
      // Re-check both stamps under the writer lock: a set_day or a publish
      // that raced this computation must not get a stale entry cached over
      // it. At capacity every resident entry is from some older stamp or a
      // pathological key sweep — clear and start over.
      if (day_.load(std::memory_order_relaxed) == day && store_.ingest_epoch() == epoch) {
        if (response_cache_.size() >= kMaxCachedResponses) response_cache_.clear();
        response_cache_.insert_or_assign(std::move(key),
                                         CachedResponse{day, epoch, response});
      }
    }
  }
  return response;
}

net::HttpResponse AppstoreService::handle_query(const ServiceRequest& context) const {
  try {
    const query::QuerySpec spec = parse_query_request(*context.http);
    // Partial mode (?partial=1 / "partial": true): the mergeable shard
    // fragment a federation gateway recombines (see query/federate.hpp).
    if (wants_partial(*context.http)) {
      const query::PartialAggregate partial = query_engine_->run_partial(spec, context.day);
      return net::HttpResponse::json(200, query_partial_json(partial, context.day).dump());
    }
    const query::QueryResult result = query_engine_->run(spec, context.day);
    return net::HttpResponse::json(200, query_result_json(result, context.day).dump());
  } catch (const query::QueryError& error) {
    return error_response(400, error.code(), error.what());
  }
}

net::HttpResponse AppstoreService::handle_metrics(const net::HttpRequest& request) const {
  const auto query = request.query();
  const auto it = query.find("fmt");
  if (it != query.end() && it->second == "text") {
    return net::HttpResponse::text(200, obs::to_text(registry_));
  }
  return net::HttpResponse::json(200, obs::to_json(registry_));
}

net::HttpResponse AppstoreService::handle_meta(market::Day day) const {
  std::uint64_t visible = 0;
  for (const auto& app : store_.apps()) {
    if (app.released <= day) ++visible;
  }
  return net::HttpResponse::json(
      200, json_object({{"store", store_.name()},
                        {"day", static_cast<std::int64_t>(day)},
                        {"total_apps", visible},
                        {"categories", static_cast<std::uint64_t>(store_.categories().size())}})
               .dump());
}

net::HttpResponse AppstoreService::handle_apps(const net::HttpRequest& request,
                                               market::Day day) const {
  const auto query = request.query();
  std::uint64_t page = 0;
  std::uint64_t per_page = 100;
  if (const auto it = query.find("page"); it != query.end()) {
    if (!util::parse_u64(it->second, page)) {
      return error_response(400, "bad_request", "bad page");
    }
  }
  if (const auto it = query.find("per_page"); it != query.end()) {
    if (!util::parse_u64(it->second, per_page) || per_page == 0 || per_page > kMaxPerPage) {
      return error_response(400, "bad_request", "bad per_page");
    }
  }

  // Visible app ids in id order (the directory lists everything released so
  // far; new releases append).
  JsonArray ids;
  std::uint64_t visible = 0;
  const std::uint64_t first = page * per_page;
  for (const auto& app : store_.apps()) {
    if (app.released > day) continue;
    if (visible >= first && visible < first + per_page) {
      ids.push_back(Json(static_cast<std::uint64_t>(app.id.value)));
    }
    ++visible;
  }
  return net::HttpResponse::json(200, json_object({{"page", page},
                                                   {"per_page", per_page},
                                                   {"total", visible},
                                                   {"ids", Json(std::move(ids))}})
                                          .dump());
}

net::HttpResponse AppstoreService::handle_app(std::uint32_t id) const {
  const market::Day day = day_.load(std::memory_order_relaxed);
  const market::App& app = store_.apps()[id];
  if (app.released > day) return error_response(404, "not_found", "not yet released");

  return net::HttpResponse::json(
      200,
      json_object(
          {{"id", static_cast<std::uint64_t>(id)},
           {"name", app.name},
           {"category", store_.category(app.category).name},
           {"developer", store_.developer(app.developer).name},
           {"paid", app.pricing == market::Pricing::kPaid},
           {"price", market::cents_to_dollars(app.price)},
           {"downloads", downloads_up_to(id, day)},
           {"version", static_cast<std::uint64_t>(version_up_to(id, day))},
           {"has_ads", app.has_ads},
           {"released", static_cast<std::int64_t>(app.released)}})
          .dump());
}

net::HttpResponse AppstoreService::handle_apk(std::uint32_t id) const {
  const market::Day day = day_.load(std::memory_order_relaxed);
  const market::App& app = store_.apps()[id];
  if (app.released > day) return error_response(404, "not_found", "not yet released");

  const std::uint32_t version = version_up_to(id, day);
  const auto ad_libraries = select_ad_libraries(id, app.has_ads);
  net::HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers["Content-Type"] = "application/vnd.android.package-archive";
  response.headers["X-Apk-Version"] = std::to_string(version);
  response.body = build_apk(id, version, ad_libraries);
  return response;
}

net::HttpResponse AppstoreService::handle_comments(std::uint32_t id,
                                                   const net::HttpRequest& request) const {
  const market::Day day = day_.load(std::memory_order_relaxed);
  const auto query = request.query();
  std::uint64_t page = 0;
  const std::uint64_t per_page = 200;
  if (const auto it = query.find("page"); it != query.end()) {
    if (!util::parse_u64(it->second, page)) {
      return error_response(400, "bad_request", "bad page");
    }
  }

  const events::FrontierSnapshot log = store_.comment_log();
  JsonArray comments;
  std::uint64_t visible = 0;
  const std::uint64_t first = page * per_page;
  const std::shared_lock lock(derived_mutex_);
  for (const auto index : derived_.comment_index[id]) {
    // A concurrent refresh may have absorbed rows past this handler's
    // snapshot; stay inside the prefix it pinned.
    if (index >= log.size()) break;
    const events::Event comment = log.row(index);
    if (comment.day > day) continue;
    if (visible >= first && visible < first + per_page) {
      comments.push_back(json_object({{"user", static_cast<std::uint64_t>(comment.user)},
                                      {"day", static_cast<std::int64_t>(comment.day)},
                                      {"ordinal", static_cast<std::uint64_t>(comment.ordinal)},
                                      {"rating", static_cast<std::uint64_t>(comment.rating)}}));
    }
    ++visible;
  }
  return net::HttpResponse::json(200, json_object({{"app", static_cast<std::uint64_t>(id)},
                                                   {"total", visible},
                                                   {"page", page},
                                                   {"comments", Json(std::move(comments))}})
                                          .dump());
}

}  // namespace appstore::crawlersim
