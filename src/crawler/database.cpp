#include "crawler/database.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace appstore::crawlersim {

void CrawlDatabase::record(const AppRecord& metadata, market::Day day,
                           const AppObservation& observation) {
  auto [it, inserted] = apps_.try_emplace(metadata.id);
  AppRecord& record = it->second;
  if (inserted) {
    record.id = metadata.id;
    record.name = metadata.name;
    record.category = metadata.category;
    record.developer = metadata.developer;
    record.paid = metadata.paid;
    record.has_ads = metadata.has_ads;
    record.first_seen = day;
  }
  record.by_day[day] = observation;
}

const AppRecord* CrawlDatabase::find(std::uint32_t id) const {
  const auto it = apps_.find(id);
  return it == apps_.end() ? nullptr : &it->second;
}

std::vector<market::Day> CrawlDatabase::crawl_days() const {
  std::set<market::Day> days;
  for (const auto& [id, record] : apps_) {
    for (const auto& [day, observation] : record.by_day) days.insert(day);
  }
  return {days.begin(), days.end()};
}

market::SnapshotSeries CrawlDatabase::snapshot_series() const {
  market::SnapshotSeries series;
  for (const market::Day day : crawl_days()) {
    market::Snapshot snapshot;
    snapshot.day = day;
    for (const auto& [id, record] : apps_) {
      // An app counts from its first observation; its download figure on a
      // day is the latest observation at or before that day.
      const auto it = record.by_day.upper_bound(day);
      if (it == record.by_day.begin()) continue;
      ++snapshot.total_apps;
      snapshot.total_downloads += std::prev(it)->second.downloads;
    }
    series.add(snapshot);
  }
  return series;
}

std::vector<double> CrawlDatabase::downloads_by_rank(market::Day day,
                                                     std::optional<bool> paid) const {
  std::vector<double> counts;
  for (const auto& [id, record] : apps_) {
    if (paid.has_value() && record.paid != *paid) continue;
    const auto it = record.by_day.upper_bound(day);
    if (it == record.by_day.begin()) continue;
    counts.push_back(static_cast<double>(std::prev(it)->second.downloads));
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

void CrawlDatabase::record_apk_scan(std::uint32_t id, std::uint32_t version,
                                    bool ads_found) {
  apps_.at(id).apk_ads_by_version[version] = ads_found;
}

bool CrawlDatabase::apk_scanned(std::uint32_t id, std::uint32_t version) const {
  const auto it = apps_.find(id);
  return it != apps_.end() && it->second.apk_ads_by_version.contains(version);
}

double CrawlDatabase::free_apps_with_ads_fraction() const {
  std::size_t scanned_free = 0;
  std::size_t with_ads = 0;
  for (const auto& [id, record] : apps_) {
    if (record.paid || record.apk_ads_by_version.empty()) continue;
    ++scanned_free;
    if (record.ads_detected()) ++with_ads;
  }
  return scanned_free == 0
             ? 0.0
             : static_cast<double>(with_ads) / static_cast<double>(scanned_free);
}

std::vector<double> CrawlDatabase::updates_per_app() const {
  std::vector<double> updates;
  updates.reserve(apps_.size());
  for (const auto& [id, record] : apps_) {
    if (record.by_day.empty()) continue;
    const auto first = record.by_day.begin()->second.version;
    const auto last = record.by_day.rbegin()->second.version;
    updates.push_back(static_cast<double>(last - first));
  }
  return updates;
}

}  // namespace appstore::crawlersim
