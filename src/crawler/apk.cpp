#include "crawler/apk.hpp"

#include <algorithm>

#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace appstore::crawlersim {

namespace {

constexpr std::string_view kMagic = "APK1\n";

/// Benign libraries mixed into every APK's table so the scanner must
/// actually match signatures rather than "any library present".
const std::vector<std::string>& benign_libraries() {
  static const std::vector<std::string> libraries = {
      "lib/core/runtime",  "lib/ui/widgets",    "lib/net/http",
      "lib/json/parser",   "lib/imaging/codec", "lib/crypto/tls",
  };
  return libraries;
}

}  // namespace

const std::vector<std::string>& ad_network_signatures() {
  static const std::vector<std::string> signatures = [] {
    std::vector<std::string> names;
    names.reserve(20);
    for (int n = 0; n < 20; ++n) {
      names.push_back(util::format("ads/network{:>2}/sdk", n));
    }
    return names;
  }();
  return signatures;
}

std::vector<std::string> select_ad_libraries(std::uint32_t app_id, bool has_ads) {
  if (!has_ads) return {};
  const auto& signatures = ad_network_signatures();
  util::Rng rng(util::combine_seed(0xadf00d, app_id));
  const std::size_t count = 1 + static_cast<std::size_t>(rng.below(3));
  std::vector<std::string> chosen;
  for (std::size_t k = 0; k < count; ++k) {
    const auto& candidate = signatures[static_cast<std::size_t>(rng.below(signatures.size()))];
    if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
      chosen.push_back(candidate);
    }
  }
  return chosen;
}

std::string build_apk(std::uint32_t app_id, std::uint32_t version,
                      std::span<const std::string> ad_libraries,
                      std::size_t payload_bytes) {
  // Library table: benign libraries (deterministic subset) + the ad SDKs.
  util::Rng rng(util::combine_seed(app_id, version));
  std::vector<std::string> table;
  for (const auto& benign : benign_libraries()) {
    if (rng.chance(0.7)) table.push_back(benign);
  }
  for (const auto& ad : ad_libraries) table.push_back(ad);
  rng.shuffle(std::span<std::string>(table));

  std::string blob(kMagic);
  blob += util::format("{}\n{}\n{}\n{}\n", app_id, version, payload_bytes, table.size());
  for (const auto& library : table) {
    blob += library;
    blob.push_back('\n');
  }
  // Pseudo-random body (printable to keep the blob string-safe end to end).
  blob.reserve(blob.size() + payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    blob.push_back(static_cast<char>('!' + rng.below(94)));
  }
  return blob;
}

std::optional<ApkHeader> parse_apk_header(std::string_view blob) {
  if (!blob.starts_with(kMagic)) return std::nullopt;
  blob.remove_prefix(kMagic.size());
  ApkHeader header;
  std::uint64_t fields[4] = {};
  for (auto& field : fields) {
    const std::size_t eol = blob.find('\n');
    if (eol == std::string_view::npos) return std::nullopt;
    if (!util::parse_u64(blob.substr(0, eol), field)) return std::nullopt;
    blob.remove_prefix(eol + 1);
  }
  header.app_id = static_cast<std::uint32_t>(fields[0]);
  header.version = static_cast<std::uint32_t>(fields[1]);
  header.payload_bytes = static_cast<std::uint32_t>(fields[2]);
  header.library_count = static_cast<std::uint32_t>(fields[3]);
  return header;
}

std::optional<ApkScan> scan_apk(std::string_view blob) {
  const auto header = parse_apk_header(blob);
  if (!header.has_value()) return std::nullopt;

  // Walk the library table (library_count lines after the header).
  std::string_view rest = blob.substr(kMagic.size());
  for (int skip = 0; skip < 4; ++skip) {
    rest.remove_prefix(rest.find('\n') + 1);
  }
  ApkScan scan;
  scan.header = *header;
  const auto& signatures = ad_network_signatures();
  for (std::uint32_t line = 0; line < header->library_count; ++line) {
    const std::size_t eol = rest.find('\n');
    if (eol == std::string_view::npos) return std::nullopt;  // truncated table
    const std::string_view library = rest.substr(0, eol);
    for (const auto& signature : signatures) {
      if (library == signature) {
        scan.ad_libraries.emplace_back(library);
        break;
      }
    }
    rest.remove_prefix(eol + 1);
  }
  return scan;
}

}  // namespace appstore::crawlersim
