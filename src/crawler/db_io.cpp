#include "crawler/db_io.hpp"

#include <fstream>
#include <stdexcept>

#include "chaos/fault.hpp"
#include "events/binary.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace appstore::crawlersim {

namespace {

constexpr std::string_view kObservationsMagic = "AOBS";
constexpr std::uint32_t kObservationsVersion = 1;
// app u32 + day i32 + downloads u64 + version u32 + price f64
constexpr std::uint64_t kObservationRowBytes =
    sizeof(std::uint32_t) + sizeof(std::int32_t) + sizeof(std::uint64_t) +
    sizeof(std::uint32_t) + sizeof(double);

/// Consults the write seam for `path`; throws InjectedFault on kTornWrite,
/// simulating a crash at this exact point of the save.
void maybe_tear(chaos::FaultInjector* faults, const std::filesystem::path& path) {
  if (faults == nullptr) return;
  const chaos::Fault fault = faults->next(chaos::FaultSite::kFileWrite, path.string());
  if (fault.kind == chaos::FaultKind::kTornWrite) {
    throw chaos::InjectedFault(fault.kind, "injected torn write for " + path.string());
  }
}

[[nodiscard]] std::uint64_t field_u64(const std::string& text, const char* what) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    throw std::runtime_error(util::format("load_database: bad {} '{}'", what, text));
  }
  return value;
}

[[nodiscard]] std::int64_t field_i64(const std::string& text, const char* what) {
  if (!text.empty() && text[0] == '-') {
    return -static_cast<std::int64_t>(field_u64(text.substr(1), what));
  }
  return static_cast<std::int64_t>(field_u64(text, what));
}

[[nodiscard]] double field_f64(const std::string& text, const char* what) {
  double value = 0.0;
  if (!util::parse_double(text, value)) {
    throw std::runtime_error(util::format("load_database: bad {} '{}'", what, text));
  }
  return value;
}

/// Columnar fast-path write: one buffered stream per column, no text
/// formatting. Row order matches the CSV writer (apps in id order, each
/// app's observations in day order).
void save_observations_binary(const CrawlDatabase& database, const std::filesystem::path& path,
                              chaos::FaultInjector* faults) {
  std::vector<std::uint32_t> app;
  std::vector<std::int32_t> day;
  std::vector<std::uint64_t> downloads;
  std::vector<std::uint32_t> version;
  std::vector<double> price_dollars;
  for (const auto& [id, record] : database.apps()) {
    for (const auto& [observed_day, observation] : record.by_day) {
      app.push_back(id);
      day.push_back(observed_day);
      downloads.push_back(observation.downloads);
      version.push_back(observation.version);
      price_dollars.push_back(observation.price_dollars);
    }
  }

  util::AtomicFile staged(path);
  {
    std::ofstream out(staged.temp_path(), std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_database: cannot open " + path.string());
    events::binary::write_header(out, kObservationsMagic, kObservationsVersion, 0,
                                 app.size());
    events::binary::write_column<std::uint32_t>(out, app);
    events::binary::write_column<std::int32_t>(out, day);
    if (faults != nullptr) {
      out.flush();  // the torn temp should hold the bytes written so far
      maybe_tear(faults, path);
    }
    events::binary::write_column<std::uint64_t>(out, downloads);
    events::binary::write_column<std::uint32_t>(out, version);
    events::binary::write_column<double>(out, price_dollars);
    out.flush();
    if (!out) throw std::runtime_error("save_database: write failed for " + path.string());
  }
  staged.commit();
}

/// Replays observations.bin into `database` (same semantics as the CSV
/// loader: metadata must already be staged in `metadata`).
void load_observations_binary(CrawlDatabase& database,
                              std::map<std::uint32_t, AppRecord>& metadata,
                              const std::filesystem::path& path,
                              const events::LoadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw events::binary::LoadError(events::binary::LoadErrorKind::kOpen,
                                    "load_database: cannot open " + path.string());
  }
  const events::binary::Header header =
      events::binary::read_header(in, kObservationsMagic, kObservationsVersion);
  if (header.flags != 0) {
    throw events::binary::LoadError(
        events::binary::LoadErrorKind::kBadFlags,
        util::format("load_database: unknown flags 0x{:x} in {}", header.flags,
                     path.string()));
  }
  const std::uint64_t n = header.count;
  events::binary::expect_payload(in, n, kObservationRowBytes, "AOBS");
  const auto app = events::binary::read_column<std::uint32_t>(in, n, "app");
  events::binary::check_app_bound(app, limits.app_bound, "AOBS");
  const auto day = events::binary::read_column<std::int32_t>(in, n, "day");
  events::binary::check_day_bound(day, limits.day_bound, "AOBS");
  const auto downloads = events::binary::read_column<std::uint64_t>(in, n, "downloads");
  const auto version = events::binary::read_column<std::uint32_t>(in, n, "version");
  const auto price_dollars = events::binary::read_column<double>(in, n, "price");

  for (std::uint64_t i = 0; i < n; ++i) {
    const auto it = metadata.find(app[i]);
    if (it == metadata.end()) {
      throw events::binary::LoadError(
          events::binary::LoadErrorKind::kAppRange,
          util::format("load_database: observation for unknown app {}", app[i]));
    }
    AppObservation observation;
    observation.downloads = downloads[i];
    observation.version = version[i];
    observation.price_dollars = price_dollars[i];
    database.record(it->second, static_cast<market::Day>(day[i]), observation);
  }
}

}  // namespace

void save_database(const CrawlDatabase& database, const std::filesystem::path& directory,
                   const events::IoOptions& options) {
  std::filesystem::create_directories(directory);

  {
    const auto path = directory / "apps.csv";
    util::AtomicFile staged(path);
    {
      util::CsvWriter apps(staged.temp_path());
      apps.write_row(
          {"id", "name", "category", "developer", "paid", "has_ads", "first_seen"});
      maybe_tear(options.faults, path);
      for (const auto& [id, record] : database.apps()) {
        apps.row(static_cast<std::uint64_t>(id), record.name, record.category,
                 record.developer, record.paid ? 1 : 0, record.has_ads ? 1 : 0,
                 static_cast<std::int64_t>(record.first_seen));
      }
    }
    staged.commit();
  }
  {
    const auto path = directory / "observations.csv";
    util::AtomicFile staged(path);
    {
      util::CsvWriter observations(staged.temp_path());
      observations.write_row({"app", "day", "downloads", "version", "price_dollars"});
      maybe_tear(options.faults, path);
      for (const auto& [id, record] : database.apps()) {
        for (const auto& [day, observation] : record.by_day) {
          observations.row(static_cast<std::uint64_t>(id), static_cast<std::int64_t>(day),
                           observation.downloads,
                           static_cast<std::uint64_t>(observation.version),
                           observation.price_dollars);
        }
      }
    }
    staged.commit();
  }
  save_observations_binary(database, directory / "observations.bin", options.faults);
  {
    const auto path = directory / "apk_scans.csv";
    util::AtomicFile staged(path);
    {
      util::CsvWriter scans(staged.temp_path());
      scans.write_row({"app", "version", "ads_found"});
      maybe_tear(options.faults, path);
      for (const auto& [id, record] : database.apps()) {
        for (const auto& [version, ads] : record.apk_ads_by_version) {
          scans.row(static_cast<std::uint64_t>(id), static_cast<std::uint64_t>(version),
                    ads ? 1 : 0);
        }
      }
    }
    staged.commit();
  }
}

CrawlDatabase load_database(const std::filesystem::path& directory,
                            const events::LoadLimits& limits) {
  const auto apps_path = directory / "apps.csv";
  const auto observations_path = directory / "observations.csv";
  const auto observations_bin_path = directory / "observations.bin";
  const bool have_binary = std::filesystem::exists(observations_bin_path);
  if (!std::filesystem::exists(apps_path) ||
      (!have_binary && !std::filesystem::exists(observations_path))) {
    throw std::runtime_error("load_database: missing apps.csv or observations in " +
                             directory.string());
  }

  CrawlDatabase database;

  // Metadata first: record() fixes app metadata on first contact, so feed
  // it one observation per app below (record needs at least one).
  std::map<std::uint32_t, AppRecord> metadata;
  for (const auto& row : util::read_csv(apps_path).rows) {
    if (row.size() < 7) throw std::runtime_error("load_database: malformed apps.csv row");
    AppRecord record;
    record.id = static_cast<std::uint32_t>(field_u64(row[0], "id"));
    record.name = row[1];
    record.category = row[2];
    record.developer = row[3];
    record.paid = row[4] == "1";
    record.has_ads = row[5] == "1";
    record.first_seen = static_cast<market::Day>(field_i64(row[6], "first_seen"));
    metadata.emplace(record.id, std::move(record));
  }

  if (have_binary) {
    load_observations_binary(database, metadata, observations_bin_path, limits);
  } else {
    for (const auto& row : util::read_csv(observations_path).rows) {
      if (row.size() < 5) {
        throw std::runtime_error("load_database: malformed observations.csv row");
      }
      const auto id = static_cast<std::uint32_t>(field_u64(row[0], "app"));
      const auto it = metadata.find(id);
      if (it == metadata.end()) {
        throw events::binary::LoadError(
            events::binary::LoadErrorKind::kAppRange,
            util::format("load_database: observation for unknown app {}", id));
      }
      AppObservation observation;
      observation.downloads = field_u64(row[2], "downloads");
      observation.version = static_cast<std::uint32_t>(field_u64(row[3], "version"));
      observation.price_dollars = field_f64(row[4], "price");
      database.record(it->second, static_cast<market::Day>(field_i64(row[1], "day")),
                      observation);
    }
  }

  const auto scans_path = directory / "apk_scans.csv";
  if (std::filesystem::exists(scans_path)) {
    for (const auto& row : util::read_csv(scans_path).rows) {
      if (row.size() < 3) throw std::runtime_error("load_database: malformed apk_scans.csv");
      const auto id = static_cast<std::uint32_t>(field_u64(row[0], "app"));
      if (database.find(id) == nullptr) continue;  // scan without observations
      database.record_apk_scan(id, static_cast<std::uint32_t>(field_u64(row[1], "version")),
                               row[2] == "1");
    }
  }
  return database;
}

market::CheckpointComponent database_component(CrawlDatabase& database) {
  return market::CheckpointComponent{
      .name = "crawldb",
      .save = [&database](const std::filesystem::path& dir) { save_database(database, dir); },
      .load = [&database](const std::filesystem::path& dir) { database = load_database(dir); },
  };
}

}  // namespace appstore::crawlersim
