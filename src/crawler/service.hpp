// The simulated appstore REST service (the "server side" of Fig. 1).
//
// Wraps a fully-generated market::AppStore behind an HTTP API exposing what
// the real stores' websites exposed: a paginated app directory and per-app
// statistics pages with *exact* download counts (the reason these four
// stores were chosen, §2.1). The service advances through virtual crawl
// days; responses reflect cumulative state up to the current day, so a
// daily re-crawl observes the store exactly as the paper's crawlers did.
//
// Policy enforcement mirrors §2.2:
//   * per-client token-bucket rate limiting (client = "X-Client-Id" header,
//     i.e. the proxy identity) with 429 on violation;
//   * optional region gating: a store configured as China-only answers 403
//     to clients whose id is not tagged "cn" (the paper could reach the
//     Chinese stores only through PlanetLab nodes in China);
//   * optional random transient failures (500) to exercise crawler retries.
//
// Endpoints (v1 surface; the legacy unversioned /api/* paths remain as
// deprecated aliases of the same handlers and answer with a
// "Deprecation: true" header):
//   /api/v1/meta                      -> {store, day, total_apps}
//   /api/v1/apps?page=P&per_page=N   -> {page, total, ids:[...]}
//   /api/v1/app/<id>                  -> per-app statistics
//   /api/v1/app/<id>/comments?page=P -> {total, comments:[...]}
//   /api/v1/app/<id>/apk              -> the current version's APK blob
//                                        (synthetic; see crawler/apk.hpp)
//   /api/v1/query                     -> online analytics (GET query-string
//                                        or POST JSON; see docs/query.md)
//   /api/v1/metrics[?fmt=text]       -> observability snapshot (JSON by
//                                        default; exempt from rate limiting
//                                        and region gating)
//
// Every non-200 response carries the uniform JSON error envelope
//   {"error": {"code": <slug>, "message": <text>, "retry_after_ms"?: <ms>}}
// (including the 503 load-shed response written below the handler, via
// net::ServerOptions::shed_body).
//
// Every instance owns an obs::Registry populated with per-endpoint request
// and latency families (service_requests_total{endpoint},
// service_request_seconds{endpoint}), policy counters
// (service_injected_failures_total, service_region_blocked_total,
// rate_limiter_*_total), response-cache counters
// (service_response_cache_total{hit,miss}), and the underlying HttpServer's
// http_* and server_* families.
//
// /api/meta, /api/apps and /api/v1/query responses are cached per (virtual
// day, ingest epoch): an entry stops matching the moment the day advances or
// any event publishes, so the cache never needs a stop-the-world clear and
// the service keeps serving day-N answers while the crawler ingests day
// N+1. See docs/serving.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "market/durable.hpp"
#include "market/store.hpp"
#include "net/proxy.hpp"
#include "net/rate_limiter.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "query/engine.hpp"
#include "util/rng.hpp"

namespace appstore::crawlersim {

struct ServicePolicy {
  double rate_per_second = 200.0;  ///< token refill per client
  double burst = 50.0;             ///< bucket depth
  bool china_only = false;         ///< 403 for non-"cn" clients
  double failure_rate = 0.0;       ///< probability of a injected 500
  std::uint64_t failure_seed = 7;
  /// Response cache for the hot read-only endpoints (/api/meta, /api/apps
  /// pages, /api/v1/query). Entries are keyed by the canonical target and
  /// stamped (day, ingest epoch); a stamp mismatch is a miss, so advancing
  /// the day or publishing events invalidates without locking readers out.
  /// Counted in service_response_cache_total{hit,miss}.
  bool cache_responses = true;
  /// Serving architecture + sizing, forwarded to net::ServerOptions.
  net::ServerMode server_mode = net::ServerMode::kWorkerPool;
  std::size_t server_workers = 0;         ///< 0 = ServerOptions default
  std::size_t server_queue_capacity = 256;
  std::size_t max_connections = 256;
  /// Admission policy for the ready queue (net::AdmissionOptions, forwarded
  /// to net::ServerOptions): the default kFixed mode is the legacy
  /// queue-capacity cliff; the adaptive modes shed once measured queue delay
  /// exceeds admission.target_delay. See docs/gameday.md.
  net::AdmissionOptions admission;
  /// Optional server-side chaos seam + clock, forwarded to the underlying
  /// net::HttpServer (see net::ServerOptions). Must outlive the service.
  chaos::Clock* clock = nullptr;
  chaos::FaultInjector* faults = nullptr;
  /// Engine limits + planner knobs of the /api/v1/query endpoint.
  query::QueryOptions query;
  /// Optional durability spine: when set, advancing the virtual day via
  /// set_day() first checkpoints the closing day (WAL retired, manifest
  /// published) — the paper's daily crawl cadence becomes the checkpoint
  /// cadence. Must be the DurableStore that owns the served store and must
  /// outlive the service. Serving continues lock-free during the
  /// checkpoint; only ingest writers stall.
  market::DurableStore* durable = nullptr;
};

class AppstoreService {
 public:
  /// Endpoint classes used as metric labels (docs/observability.md).
  enum class Endpoint : std::uint8_t {
    kMeta = 0,
    kApps,
    kApp,
    kComments,
    kApk,
    kQuery,
    kMetrics,
    kOther,
  };
  static constexpr std::size_t kEndpointCount = 8;

  /// Result of table-driven path routing (see route()).
  struct RouteMatch {
    Endpoint endpoint = Endpoint::kOther;
    bool api = false;        ///< path was under /api or /api/v1
    bool versioned = false;  ///< path was under /api/v1
    std::string_view rest;   ///< path after the matched route prefix
  };

  /// Per-request context handed to handlers — the Options-struct form, so
  /// new handler parameters stop accreting positional arguments.
  struct ServiceRequest {
    const net::HttpRequest* http = nullptr;
    Endpoint endpoint = Endpoint::kOther;
    bool versioned = false;
    std::string_view rest;  ///< RouteMatch::rest (e.g. the app id segment)
    market::Day day = 0;
    std::string client;
  };

  /// Starts serving `store` on 127.0.0.1:`port` (0 = ephemeral). The store
  /// must outlive the service and is not mutated.
  AppstoreService(const market::AppStore& store, ServicePolicy policy,
                  std::uint16_t port = 0, net::TokenBucketLimiter::Clock clock = nullptr);

  [[nodiscard]] std::uint16_t port() const noexcept { return server_->port(); }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return server_->requests_served();
  }

  /// The HTTP server's admission controller (nullptr in
  /// thread-per-connection mode). bench_gameday uses it to pre-converge the
  /// adaptive limit before a measured window and to read the final limit
  /// and shed count afterwards.
  [[nodiscard]] net::AdmissionController* admission() noexcept {
    return server_->admission();
  }

  /// The service's metrics registry (also served at /api/metrics).
  [[nodiscard]] const obs::Registry& metrics() const noexcept { return registry_; }
  [[nodiscard]] obs::Registry& metrics() noexcept { return registry_; }

  /// Publishes the new virtual crawl day (thread-safe, wait-free for
  /// concurrent readers). Cached responses stamped with older days simply
  /// stop matching — no stop-the-world invalidation.
  void set_day(market::Day day);
  [[nodiscard]] market::Day day() const noexcept {
    return day_.load(std::memory_order_relaxed);
  }

  /// Serves one request in-process, through the full policy + cache path the
  /// HTTP handler uses — the load harness drives this directly when it wants
  /// to measure the service without socket overhead.
  [[nodiscard]] net::HttpResponse respond(const net::HttpRequest& request) {
    return handle(request);
  }

  void stop() { server_->stop(); }

  /// Table-driven path routing: strips the /api/v1 (or legacy /api) prefix
  /// and matches the remainder against the route table. Exposed for tests.
  [[nodiscard]] static RouteMatch route(std::string_view path) noexcept;

 private:
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& request);
  [[nodiscard]] net::HttpResponse handle_meta(market::Day day) const;
  [[nodiscard]] net::HttpResponse handle_apps(const net::HttpRequest& request,
                                              market::Day day) const;
  /// Cache-aware dispatch for the per-day-immutable endpoints. `key` is the
  /// canonical cache key (prefix-stripped target, plus the body for POST),
  /// shared by the v1 path and its legacy alias.
  [[nodiscard]] net::HttpResponse handle_cacheable(const ServiceRequest& context,
                                                   std::string key);
  [[nodiscard]] net::HttpResponse handle_app(std::uint32_t id) const;
  [[nodiscard]] net::HttpResponse handle_comments(std::uint32_t id,
                                                  const net::HttpRequest& request) const;
  [[nodiscard]] net::HttpResponse handle_apk(std::uint32_t id) const;
  [[nodiscard]] net::HttpResponse handle_metrics(const net::HttpRequest& request) const;
  [[nodiscard]] net::HttpResponse handle_query(const ServiceRequest& context) const;

  /// Cumulative downloads of an app up to the current day (binary search
  /// over the app's sorted event-day list).
  [[nodiscard]] std::uint64_t downloads_up_to(std::uint32_t app, market::Day day) const;
  [[nodiscard]] std::uint32_t version_up_to(std::uint32_t app, market::Day day) const;

  const market::AppStore& store_;
  ServicePolicy policy_;
  std::atomic<market::Day> day_{0};
  obs::Registry registry_;
  net::TokenBucketLimiter limiter_;
  std::atomic<std::uint64_t> failure_state_;

  /// Lock-free per-endpoint handles into registry_, resolved at construction.
  obs::Counter* endpoint_requests_[kEndpointCount] = {};
  obs::Histogram* endpoint_latency_[kEndpointCount] = {};
  obs::Counter* injected_failures_ = nullptr;
  obs::Counter* region_blocked_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;

  /// The analytics engine behind /api/v1/query (bound to store_, metrics in
  /// registry_).
  std::unique_ptr<query::QueryEngine> query_engine_;

  /// Response cache keyed by the canonical (prefix-stripped) request target,
  /// so /api/v1/meta and its legacy alias share one entry. Each entry is
  /// stamped with the (day, ingest epoch) it was computed under; a lookup
  /// must match both, so entries from an older day or a pre-ingest epoch are
  /// dead weight that the next insert for the same key replaces. A racing
  /// insert re-checks both stamps under the writer lock (the map never
  /// serves a response from another day or epoch).
  struct CachedResponse {
    market::Day day;
    std::uint64_t epoch;
    net::HttpResponse response;
  };
  mutable std::shared_mutex cache_mutex_;
  std::unordered_map<std::string, CachedResponse> response_cache_;

  /// Derived per-app read layout, refreshed incrementally from the live
  /// logs' frontiers: each refresh absorbs only rows past the recorded
  /// watermarks, so steady-state serving after a quiet frontier is two
  /// atomic loads and a shared lock. Guarded by derived_mutex_.
  struct DerivedState {
    /// Per-app sorted download-event days.
    std::vector<std::vector<market::Day>> download_days;
    /// Per-app comment row ids (into store.comment_log()) in append order.
    std::vector<std::vector<std::uint32_t>> comment_index;
    std::uint64_t download_rows = 0;  ///< download-log rows absorbed
    std::uint64_t comment_rows = 0;   ///< comment-log rows absorbed
  };
  /// Catches the derived state up to the current frontiers (no-op fast path
  /// when the watermarks already match).
  void refresh_derived() const;
  mutable std::shared_mutex derived_mutex_;
  mutable DerivedState derived_;

  std::unique_ptr<net::HttpServer> server_;
};

/// Metric label for an endpoint class ("meta", "apps", ...).
[[nodiscard]] std::string_view to_string(AppstoreService::Endpoint endpoint) noexcept;

}  // namespace appstore::crawlersim
