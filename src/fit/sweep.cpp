#include "fit/sweep.hpp"

#include "models/app_clustering_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "par/parallel.hpp"
#include "stats/distance.hpp"
#include "util/logging.hpp"

namespace appstore::fit {

namespace {

constexpr std::string_view kComponent = "fit";

[[nodiscard]] double measured_total(std::span<const double> measured) {
  double total = 0.0;
  for (const double d : measured) total += d;
  return total;
}

}  // namespace

double evaluate_distance(const models::DownloadModel& model,
                         std::span<const double> measured_by_rank, std::uint64_t seed,
                         bool analytic, std::vector<double>* simulated_out) {
  std::vector<double> simulated;
  if (analytic) {
    simulated = model.expected_downloads();
  } else {
    util::Rng rng(seed);
    simulated = model.generate(rng).counts();
  }
  std::sort(simulated.begin(), simulated.end(), std::greater<>());
  simulated.resize(measured_by_rank.size(), 0.0);
  const double distance = stats::mean_relative_error(measured_by_rank, simulated);
  if (simulated_out != nullptr) *simulated_out = std::move(simulated);
  return distance;
}

FitResult fit_model(models::ModelKind kind, std::span<const double> measured_by_rank,
                    std::uint64_t users, std::uint32_t cluster_count,
                    const SweepOptions& options) {
  if (measured_by_rank.empty()) throw std::invalid_argument("fit_model: empty target");
  if (users == 0) throw std::invalid_argument("fit_model: zero users");

  FitResult result;
  result.kind = kind;
  result.distance = std::numeric_limits<double>::infinity();

  models::ModelParams base;
  base.app_count = static_cast<std::uint32_t>(measured_by_rank.size());
  base.user_count = users;
  base.downloads_per_user = measured_total(measured_by_rank) / static_cast<double>(users);
  base.cluster_count = cluster_count;

  const bool clustering = kind == models::ModelKind::kAppClustering;
  const std::vector<double> unit = {0.0};
  const auto& p_grid = clustering ? options.p_grid : unit;
  const auto& zc_grid = clustering ? options.zc_grid : unit;

  // Candidate cells in grid order; evaluated one task per cell. Each cell
  // builds its own model and uses the same seed the serial sweep would, so
  // per-cell distances — and therefore the selected minimum — are identical
  // at every thread count.
  std::vector<models::ModelParams> candidates;
  candidates.reserve(options.zr_grid.size() * p_grid.size() * zc_grid.size());
  for (const double zr : options.zr_grid) {
    for (const double p : p_grid) {
      for (const double zc : zc_grid) {
        models::ModelParams params = base;
        params.zr = zr;
        params.p = p;
        params.zc = zc;
        candidates.push_back(params);
      }
    }
  }

  if (candidates.empty()) return result;

  const par::Options par_options{.threads = options.threads, .grain = 1};
  const std::vector<double> distances = par::parallel_map<double>(
      candidates.size(), par_options, [&](std::uint64_t i) {
        const auto model = models::make_model(kind, candidates[i]);
        return evaluate_distance(*model, measured_by_rank, options.seed, options.analytic);
      });

  result.all.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const models::ModelParams& params = candidates[i];
    result.all.push_back(Candidate{params, distances[i]});
    util::log_debug(kComponent, "{} zr={} p={} zc={} -> distance {:.4f}", to_string(kind),
                    params.zr, params.p, params.zc, distances[i]);
    if (distances[i] < result.distance) {
      result.distance = distances[i];
      result.best = params;
    }
  }
  // Re-simulate only the winning cell for its rank curve (same seed: the
  // realization matches the one the sweep scored).
  const auto best_model = models::make_model(kind, result.best);
  (void)evaluate_distance(*best_model, measured_by_rank, options.seed, options.analytic,
                          &result.simulated_by_rank);
  return result;
}

std::vector<UsersSweepPoint> sweep_users(models::ModelKind kind,
                                         std::span<const double> measured_by_rank,
                                         const models::ModelParams& params,
                                         std::span<const double> user_ratios,
                                         const UsersSweepOptions& options) {
  if (measured_by_rank.empty()) throw std::invalid_argument("sweep_users: empty target");
  const double top_downloads = measured_by_rank.front();
  const double total = measured_total(measured_by_rank);
  const std::uint32_t runs = options.analytic ? 1 : std::max<std::uint32_t>(1, options.replicates);

  // One task per (ratio, replicate): replicates of the slowest ratio spread
  // across threads instead of serializing behind it.
  const std::uint64_t task_count = user_ratios.size() * runs;
  const par::Options par_options{.threads = options.threads, .grain = 1};
  const std::vector<double> distances = par::parallel_map<double>(
      task_count, par_options, [&](std::uint64_t task) {
        const double ratio = user_ratios[static_cast<std::size_t>(task / runs)];
        const auto replicate = static_cast<std::uint32_t>(task % runs);
        const auto users =
            std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ratio * top_downloads));
        models::ModelParams candidate = params;
        candidate.app_count = static_cast<std::uint32_t>(measured_by_rank.size());
        candidate.user_count = users;
        candidate.downloads_per_user = total / static_cast<double>(users);
        std::unique_ptr<models::DownloadModel> model;
        if (kind == models::ModelKind::kAppClustering && options.layout != nullptr) {
          model = std::make_unique<models::AppClusteringModel>(candidate, *options.layout);
        } else {
          model = models::make_model(kind, candidate);
        }
        return evaluate_distance(*model, measured_by_rank, options.seed + replicate,
                                 options.analytic);
      });

  std::vector<UsersSweepPoint> points;
  points.reserve(user_ratios.size());
  for (std::size_t i = 0; i < user_ratios.size(); ++i) {
    const double ratio = user_ratios[i];
    const auto users =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ratio * top_downloads));
    double distance = 0.0;
    for (std::uint32_t r = 0; r < runs; ++r) distance += distances[i * runs + r];
    points.push_back(UsersSweepPoint{ratio, users, distance / runs});
  }
  return points;
}

std::vector<UsersSweepPoint> sweep_users(models::ModelKind kind,
                                         std::span<const double> measured_by_rank,
                                         const models::ModelParams& params,
                                         std::span<const double> user_ratios,
                                         std::uint64_t seed, bool analytic,
                                         std::uint32_t replicates,
                                         const models::ClusterLayout* layout) {
  return sweep_users(kind, measured_by_rank, params, user_ratios,
                     UsersSweepOptions{.seed = seed,
                                       .analytic = analytic,
                                       .replicates = replicates,
                                       .layout = layout});
}

}  // namespace appstore::fit
