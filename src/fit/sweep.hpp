// Model fitting by grid sweep (§5.2.1): "We tuned the parameters of each
// model to produce the best data fit, by running simulations with all
// parameter combinations, and measuring the distance from actual data."
//
// The measured target is a rank–download curve (descending). A candidate's
// distance is the Eq.-6 mean relative error between the measured curve and
// the candidate's simulated curve sorted the same way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "models/model.hpp"

namespace appstore::fit {

struct Candidate {
  models::ModelParams params;
  double distance = 0.0;
};

struct FitResult {
  models::ModelKind kind = models::ModelKind::kZipf;
  models::ModelParams best;
  double distance = 0.0;
  /// Rank–download curve of the best candidate (descending).
  std::vector<double> simulated_by_rank;
  /// Every evaluated candidate, for sensitivity plots.
  std::vector<Candidate> all;
};

struct SweepOptions {
  std::vector<double> zr_grid = {0.8, 1.0, 1.2, 1.4, 1.6, 1.8};
  std::vector<double> p_grid = {0.8, 0.9, 0.95};     // APP-CLUSTERING only
  std::vector<double> zc_grid = {1.2, 1.4, 1.6};     // APP-CLUSTERING only
  std::uint64_t seed = 0x5eed;
  /// Evaluate candidates with the analytic expectation instead of a Monte
  /// Carlo run — ~100x faster, slightly optimistic about noise.
  bool analytic = false;
  /// Worker threads for the grid sweep (one task per (zr, p, zc) cell);
  /// 0 = hardware_concurrency. Every cell is evaluated with the same seed as
  /// the serial sweep, so the selected cell and distances are identical at
  /// every thread count.
  std::size_t threads = 0;
};

/// Fits one model family to the measured curve. `users` and
/// `cluster_count` are fixed (the paper fixes U ≈ top-app downloads,
/// Fig. 10, and C = the store's category count); d is derived from the
/// measured total downloads and U.
[[nodiscard]] FitResult fit_model(models::ModelKind kind,
                                  std::span<const double> measured_by_rank,
                                  std::uint64_t users, std::uint32_t cluster_count,
                                  const SweepOptions& options);

/// Fig. 10: distance as a function of the user count, expressed as a ratio
/// of the downloads of the most popular app. Model parameters other than U
/// (and the derived d) are taken from `params`.
struct UsersSweepPoint {
  double user_ratio = 0.0;   ///< U / downloads of rank-1 app
  std::uint64_t users = 0;
  double distance = 0.0;
};

/// Options for sweep_users. `replicates` > 1 averages the distance over
/// several Monte Carlo seeds (seed, seed+1, ...) — the Eq.-6 distance of a
/// single realization is noisy enough near the minimum to shuffle the best
/// ratio otherwise. `layout` (optional) supplies the store's actual
/// app-to-category layout for APP-CLUSTERING candidates; without it a
/// round-robin layout with params.cluster_count equal clusters is used.
/// Matching the real category sizes matters here: an equal-cluster model
/// widens the fetch-at-most-once head plateau and biases the preferred user
/// count upward.
struct UsersSweepOptions {
  std::uint64_t seed = 0x5eed;
  bool analytic = false;
  std::uint32_t replicates = 1;
  const models::ClusterLayout* layout = nullptr;
  /// Worker threads (one task per (ratio, replicate) evaluation); 0 = all
  /// cores. Results are identical at every thread count.
  std::size_t threads = 0;
};

[[nodiscard]] std::vector<UsersSweepPoint> sweep_users(
    models::ModelKind kind, std::span<const double> measured_by_rank,
    const models::ModelParams& params, std::span<const double> user_ratios,
    const UsersSweepOptions& options);

/// Deprecated positional form; forwards to the UsersSweepOptions overload.
[[nodiscard]] std::vector<UsersSweepPoint> sweep_users(
    models::ModelKind kind, std::span<const double> measured_by_rank,
    const models::ModelParams& params, std::span<const double> user_ratios,
    std::uint64_t seed, bool analytic = false, std::uint32_t replicates = 1,
    const models::ClusterLayout* layout = nullptr);

/// Shared helper: Eq.-6 distance between a measured curve and a model
/// realization (Monte Carlo or analytic), comparing rank-by-rank.
[[nodiscard]] double evaluate_distance(const models::DownloadModel& model,
                                       std::span<const double> measured_by_rank,
                                       std::uint64_t seed, bool analytic,
                                       std::vector<double>* simulated_out = nullptr);

}  // namespace appstore::fit
