#include "chaos/file_faults.hpp"

#include <fstream>
#include <stdexcept>

#include "util/format.hpp"

namespace appstore::chaos {

void truncate_file(const std::filesystem::path& path, std::uint64_t size) {
  std::error_code error;
  const std::uint64_t current = std::filesystem::file_size(path, error);
  if (error) throw std::runtime_error("truncate_file: cannot stat " + path.string());
  if (size > current) {
    throw std::runtime_error(util::format("truncate_file: {} > size of {}", size,
                                          path.string()));
  }
  std::filesystem::resize_file(path, size, error);
  if (error) throw std::runtime_error("truncate_file: cannot resize " + path.string());
}

void flip_byte(const std::filesystem::path& path, std::uint64_t offset,
               std::uint8_t mask) {
  if (mask == 0) throw std::runtime_error("flip_byte: mask must be non-zero");
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw std::runtime_error("flip_byte: cannot open " + path.string());
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(file.tellg());
  if (offset >= size) {
    throw std::runtime_error(util::format("flip_byte: offset {} >= size {} of {}", offset,
                                          size, path.string()));
  }
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(static_cast<std::uint8_t>(byte) ^ mask);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  file.flush();
  if (!file) throw std::runtime_error("flip_byte: write failed for " + path.string());
}

std::string corrupt_file(const std::filesystem::path& path, util::Rng& rng) {
  std::error_code error;
  const std::uint64_t size = std::filesystem::file_size(path, error);
  if (error || size == 0) {
    throw std::runtime_error("corrupt_file: missing or empty " + path.string());
  }
  if (rng.chance(0.5)) {
    const std::uint64_t keep = rng.below(size);  // always drops >= 1 byte
    truncate_file(path, keep);
    return util::format("truncate {} -> {}", size, keep);
  }
  const std::uint64_t offset = rng.below(size);
  const auto mask = static_cast<std::uint8_t>(1U << rng.below(8));
  flip_byte(path, offset, mask);
  return util::format("flip byte {} ^ 0x{:x}", offset, static_cast<unsigned>(mask));
}

}  // namespace appstore::chaos
