#include "chaos/clock.hpp"

#include <thread>

namespace appstore::chaos {

namespace {

class SystemClock final : public Clock {
 public:
  [[nodiscard]] std::chrono::steady_clock::time_point now() override {
    return std::chrono::steady_clock::now();
  }

  void sleep_for(std::chrono::nanoseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }
};

}  // namespace

Clock& system_clock() noexcept {
  static SystemClock clock;
  return clock;
}

std::chrono::steady_clock::time_point now_or_real(Clock* clock) {
  return clock != nullptr ? clock->now() : std::chrono::steady_clock::now();
}

void sleep_or_real(Clock* clock, std::chrono::nanoseconds duration) {
  if (clock != nullptr) {
    clock->sleep_for(duration);
  } else if (duration.count() > 0) {
    std::this_thread::sleep_for(duration);
  }
}

}  // namespace appstore::chaos
