#include "chaos/fault.hpp"

#include "util/format.hpp"
#include "util/rng.hpp"

namespace appstore::chaos {

std::string_view to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kConnect: return "connect";
    case FaultSite::kExchange: return "exchange";
    case FaultSite::kServer: return "server";
    case FaultSite::kFileWrite: return "file_write";
    case FaultSite::kFileRead: return "file_read";
  }
  return "?";
}

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kConnectRefused: return "connect_refused";
    case FaultKind::kConnectionReset: return "connection_reset";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kHttp429: return "http_429";
    case FaultKind::kHttp403: return "http_403";
    case FaultKind::kHttp500: return "http_500";
    case FaultKind::kTornWrite: return "torn_write";
  }
  return "?";
}

Fault FaultPlan::decide(FaultSite site, std::string_view key, std::uint32_t call) const {
  // One generator per (seed, site, key, call): decisions are a pure hash of
  // their coordinates, never a shared stream, so concurrent keys cannot
  // perturb each other's schedules.
  const std::uint64_t key_seed =
      util::combine_seed(util::combine_seed(seed, util::hash64(key)),
                         static_cast<std::uint64_t>(site) + 1);
  util::Rng rng(util::rng::derive_seed(key_seed, call));
  for (const FaultRule& rule : rules) {
    if (rule.site != site) continue;
    // Each rule consumes exactly one draw whether or not it fires, keeping
    // later rules' decisions independent of earlier rules' probabilities.
    const bool fired = rng.chance(rule.probability);
    if (fired) return Fault{rule.kind, rule.latency};
  }
  return {};
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Registry* metrics)
    : plan_(std::move(plan)) {
  if (metrics != nullptr) {
    metrics->describe("faults_injected_total", "Faults injected by kind (chaos)");
    for (std::size_t kind = 1; kind < kFaultKindCount; ++kind) {
      by_kind_[kind] = &metrics->counter("faults_injected_total",
                                         to_string(static_cast<FaultKind>(kind)));
    }
  }
}

Fault FaultInjector::next(FaultSite site, std::string_view key) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  Fault fault;
  {
    const std::lock_guard lock(mutex_);
    KeyState& state = keys_[util::format("{}|{}", to_string(site), key)];
    const bool capped = plan_.max_faults_per_key != 0 &&
                        state.injected >= plan_.max_faults_per_key;
    if (!capped) fault = plan_.decide(site, key, state.calls);
    ++state.calls;
    if (!fault.none()) ++state.injected;
  }
  if (!fault.none()) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    obs::Counter* counter = by_kind_[static_cast<std::size_t>(fault.kind)];
    if (counter != nullptr) counter->inc();
  }
  return fault;
}

}  // namespace appstore::chaos
