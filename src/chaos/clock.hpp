// Pluggable time source for fault-injection and robustness testing.
//
// Production code sleeps and reads the clock through a chaos::Clock so that
// chaos tests can substitute a VirtualClock: sleeps become instantaneous
// advances of virtual time, letting backoff-heavy scenarios (a crawl with
// hundreds of 429 retries, a circuit breaker cycling open -> half-open ->
// closed) replay deterministically in microseconds of wall time. A null
// Clock* everywhere means "real time" — the seam costs one branch.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>

namespace appstore::chaos {

/// Abstract monotonic time source. Implementations must be thread-safe:
/// server, crawler, and breaker code read it from concurrent threads.
class Clock {
 public:
  virtual ~Clock() = default;

  [[nodiscard]] virtual std::chrono::steady_clock::time_point now() = 0;

  /// Blocks (real clock) or advances virtual time (VirtualClock).
  virtual void sleep_for(std::chrono::nanoseconds duration) = 0;

  /// Adapter for APIs that take a bare time function (e.g.
  /// net::TokenBucketLimiter::Clock). The returned function references this
  /// clock, which must outlive it.
  [[nodiscard]] std::function<std::chrono::steady_clock::time_point()> time_fn() {
    return [this] { return now(); };
  }
};

/// The process clock: now() = steady_clock::now(), sleep_for() really sleeps.
[[nodiscard]] Clock& system_clock() noexcept;

/// Reads `clock` if non-null, the real clock otherwise (the convention for
/// optional Clock* options throughout the library).
[[nodiscard]] std::chrono::steady_clock::time_point now_or_real(Clock* clock);
void sleep_or_real(Clock* clock, std::chrono::nanoseconds duration);

/// Deterministic virtual time: now() starts at an arbitrary fixed epoch and
/// only moves when someone sleeps or calls advance(). sleep_for() returns
/// immediately after bumping the clock, so code written against real time
/// replays at memory speed. Thread-safe; concurrent sleeps simply accumulate
/// (total elapsed time is the sum of all sleeps, which is deterministic for
/// a deterministic set of sleepers).
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;

  [[nodiscard]] std::chrono::steady_clock::time_point now() override {
    return epoch() + std::chrono::nanoseconds(offset_.load(std::memory_order_acquire));
  }

  void sleep_for(std::chrono::nanoseconds duration) override { advance(duration); }

  /// Moves virtual time forward without sleeping semantics.
  void advance(std::chrono::nanoseconds duration) {
    if (duration.count() > 0) {
      offset_.fetch_add(duration.count(), std::memory_order_acq_rel);
    }
  }

  /// Virtual time elapsed since construction.
  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::nanoseconds(offset_.load(std::memory_order_acquire));
  }

 private:
  /// A fixed non-zero epoch so time_points behave like steady_clock's
  /// (strictly positive, far from underflow when code subtracts timeouts).
  [[nodiscard]] static std::chrono::steady_clock::time_point epoch() noexcept {
    return std::chrono::steady_clock::time_point(std::chrono::hours(1));
  }

  std::atomic<std::int64_t> offset_{0};
};

}  // namespace appstore::chaos
