// Seeded, deterministic fault injection (the chaos core).
//
// A FaultPlan is a pure schedule: decide(site, key, call) maps the same
// (seed, site, key, call-ordinal) to the same fault on every run and on
// every thread schedule, because it hashes its inputs instead of consuming
// a shared random stream. A FaultInjector wraps a plan with the per-key
// call/injection bookkeeping (thread-safe) and an injection cap per key, so
// a bounded retry loop is guaranteed to eventually see a clean call — the
// property the robustness harness relies on to assert bit-identical
// recovery against a fault-free run.
//
// Injection seams consult the injector with a stable key (an HTTP target, a
// file path); a null FaultInjector* disables the seam at the cost of one
// branch (bench_perf_micro measures this as ~0).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"

namespace appstore::chaos {

/// Where a fault can be injected.
enum class FaultSite : std::uint8_t {
  kConnect = 0,   ///< client, before establishing a connection
  kExchange,      ///< client, around one HTTP request/response exchange
  kServer,        ///< server, after parsing a request, before the handler
  kFileWrite,     ///< binary/CSV writers (torn writes)
  kFileRead,      ///< binary readers (reserved for read-side seams)
};
inline constexpr std::size_t kFaultSiteCount = 5;

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kConnectRefused,   ///< connect() fails with ECONNREFUSED
  kConnectionReset,  ///< the exchange dies mid-flight with ECONNRESET
  kLatency,          ///< the exchange is delayed by Fault::latency
  kHttp429,          ///< synthetic "429 Too Many Requests"
  kHttp403,          ///< synthetic "403 Forbidden"
  kHttp500,          ///< synthetic "500 Internal Server Error"
  kTornWrite,        ///< the writer dies after a partial write
};
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] std::string_view to_string(FaultSite site) noexcept;
[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One decided fault. kind == kNone means "proceed normally".
struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::chrono::milliseconds latency{0};

  [[nodiscard]] bool none() const noexcept { return kind == FaultKind::kNone; }
};

/// One line of a fault schedule: at `site`, inject `kind` with probability
/// `probability` per call. Rules are evaluated in order; the first hit wins.
struct FaultRule {
  FaultSite site = FaultSite::kExchange;
  FaultKind kind = FaultKind::kHttp500;
  double probability = 0.0;
  std::chrono::milliseconds latency{0};  ///< used by kLatency rules
};

/// The seeded schedule. A pure value: copyable, comparable runs.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  /// Hard cap on faults injected per (site, key); once reached, further
  /// calls for that key are clean. Guarantees that any retry loop with a
  /// budget larger than the cap recovers. 0 = uncapped (use only in tests
  /// that do not require recovery).
  std::uint32_t max_faults_per_key = 2;

  /// Pure decision for the `call`-th consultation of (site, key): the same
  /// inputs always yield the same fault, independent of thread schedule or
  /// calls for other keys. Does NOT apply max_faults_per_key (the injector
  /// tracks per-key injection counts).
  [[nodiscard]] Fault decide(FaultSite site, std::string_view key,
                             std::uint32_t call) const;
};

/// Thrown by write seams simulating a crash mid-write (torn write). Typed so
/// tests can distinguish injected faults from genuine I/O errors.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] FaultKind kind() const noexcept { return kind_; }

 private:
  FaultKind kind_;
};

/// Stateful front-end of a FaultPlan: counts calls and injections per
/// (site, key), enforces the per-key cap, and mirrors injections into
/// `faults_injected_total{kind}` counters. Thread-safe; a given key's calls
/// must be serialized by the caller for deterministic schedules (retry loops
/// and per-target shards already are).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, obs::Registry* metrics = nullptr);

  /// Decides the fault for the next call of (site, key).
  [[nodiscard]] Fault next(FaultSite site, std::string_view key);

  /// Total faults injected across all sites and keys.
  [[nodiscard]] std::uint64_t injected_total() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Total consultations (faulted or clean).
  [[nodiscard]] std::uint64_t calls_total() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct KeyState {
    std::uint32_t calls = 0;
    std::uint32_t injected = 0;
  };

  FaultPlan plan_;
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> calls_{0};
  obs::Counter* by_kind_[kFaultKindCount] = {};  ///< faults_injected_total{kind}
  std::mutex mutex_;
  std::unordered_map<std::string, KeyState> keys_;
};

}  // namespace appstore::chaos
