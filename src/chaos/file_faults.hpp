// Seeded file corruption for persistence robustness tests.
//
// The loaders' fault model (docs/robustness.md) is "any prefix, any byte":
// a crawl box can die mid-write (truncation) and disks/transfer can flip
// bytes. These helpers apply exactly those corruptions, deterministically
// from a util::Rng, so a fuzz loop over seeds is reproducible: the
// robustness suite replays 1000 seeded corruptions over valid "AEVL"/"AOBS"
// files and asserts every load ends in a typed error or a clean success —
// never a crash, hang, or garbage value (verified under ASan).
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>

#include "chaos/fault.hpp"
#include "util/rng.hpp"

namespace appstore::chaos {

/// Simulates a process kill at an exact byte offset of one file's write
/// stream (the WAL crash-fuzz seam, docs/durability.md). The writer asks
/// admit(n) before each n-byte write and may only write the granted prefix;
/// bytes past the armed offset are denied. After a short grant the writer
/// flushes what landed and calls fire(), which throws
/// InjectedFault{kTornWrite} — the on-disk state is then exactly the first
/// `offset` bytes of the stream, including a tear mid-record or mid-header.
class KillAtOffset {
 public:
  explicit KillAtOffset(std::uint64_t offset) noexcept : remaining_(offset) {}

  /// Grants min(size, bytes left before the kill point) and advances the
  /// stream position by the grant. A grant below `size` means the kill
  /// point is inside this write.
  [[nodiscard]] std::uint64_t admit(std::uint64_t size) noexcept {
    const std::uint64_t granted = std::min(size, remaining_);
    remaining_ -= granted;
    consumed_ += granted;
    if (granted < size) tripped_ = true;
    return granted;
  }

  /// Whether any write has been cut short yet.
  [[nodiscard]] bool tripped() const noexcept { return tripped_; }

  /// Bytes granted so far — the stream position of the seam. A probe run
  /// armed past the end of the stream reads the total here, which a fuzz
  /// harness then uses to draw kill offsets covering every byte.
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }

  [[noreturn]] void fire(const std::string& what) const {
    throw InjectedFault(FaultKind::kTornWrite, "kill-at-offset: " + what);
  }

 private:
  std::uint64_t remaining_;
  std::uint64_t consumed_ = 0;
  bool tripped_ = false;
};

/// Truncates the file to `size` bytes (size must not exceed the current
/// size). Throws std::runtime_error on I/O failure.
void truncate_file(const std::filesystem::path& path, std::uint64_t size);

/// XORs the byte at `offset` with `mask` (mask must be non-zero so the byte
/// actually changes). Throws std::runtime_error on I/O failure or an
/// out-of-range offset.
void flip_byte(const std::filesystem::path& path, std::uint64_t offset,
               std::uint8_t mask);

/// Applies one random corruption — a truncation to a random prefix or a
/// random single-byte flip — drawn from `rng`. Returns a human-readable
/// description ("truncate 1234 -> 57", "flip byte 12 ^ 0x40") for test
/// diagnostics. The file must be non-empty.
std::string corrupt_file(const std::filesystem::path& path, util::Rng& rng);

}  // namespace appstore::chaos
