// Seeded file corruption for persistence robustness tests.
//
// The loaders' fault model (docs/robustness.md) is "any prefix, any byte":
// a crawl box can die mid-write (truncation) and disks/transfer can flip
// bytes. These helpers apply exactly those corruptions, deterministically
// from a util::Rng, so a fuzz loop over seeds is reproducible: the
// robustness suite replays 1000 seeded corruptions over valid "AEVL"/"AOBS"
// files and asserts every load ends in a typed error or a clean success —
// never a crash, hang, or garbage value (verified under ASan).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "util/rng.hpp"

namespace appstore::chaos {

/// Truncates the file to `size` bytes (size must not exceed the current
/// size). Throws std::runtime_error on I/O failure.
void truncate_file(const std::filesystem::path& path, std::uint64_t size);

/// XORs the byte at `offset` with `mask` (mask must be non-zero so the byte
/// actually changes). Throws std::runtime_error on I/O failure or an
/// out-of-range offset.
void flip_byte(const std::filesystem::path& path, std::uint64_t offset,
               std::uint8_t mask);

/// Applies one random corruption — a truncation to a random prefix or a
/// random single-byte flip — drawn from `rng`. Returns a human-readable
/// description ("truncate 1234 -> 57", "flip byte 12 ^ 0x40") for test
/// diagnostics. The file must be non-empty.
std::string corrupt_file(const std::filesystem::path& path, util::Rng& rng);

}  // namespace appstore::chaos
