// Calibrated appstore profiles.
//
// One StoreProfile per monitored marketplace, with paper-scale numbers taken
// from Table 1 (app counts, crawl windows, download totals) and the fitted
// model parameters of Figs. 3, 8 and 11. The generator scales these down via
// GeneratorConfig so the full bench suite runs in minutes; --scale=1
// reproduces paper-scale magnitudes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "market/types.hpp"
#include "models/model.hpp"

namespace appstore::obs {
class Registry;
}

namespace appstore::synth {

/// Download-generation settings for one pricing segment (free or paid).
struct SegmentSpec {
  std::uint64_t downloads_first = 0;  ///< cumulative downloads on the first crawl day
  std::uint64_t downloads_last = 0;   ///< cumulative downloads on the last crawl day
  /// U ≈ top_app_share × downloads_last — Fig. 10: the user count that best
  /// reproduces each store equals the downloads of its most popular app.
  double top_app_share = 0.01;
  models::ModelKind kind = models::ModelKind::kAppClustering;
  double zr = 1.4;
  double zc = 1.4;
  double p = 0.9;

  [[nodiscard]] bool enabled() const noexcept { return downloads_last > 0; }
};

struct StoreProfile {
  std::string name;
  std::uint64_t apps_first = 0;   ///< apps listed on the first crawl day
  std::uint64_t apps_last = 0;    ///< apps listed on the last crawl day
  market::Day crawl_days = 60;    ///< length of the observation window
  double paid_fraction = 0.0;     ///< fraction of apps that are paid
  std::uint32_t category_count = 34;
  /// SlideMe uses the named 20-category list of Fig. 15/18; the Chinese
  /// stores use generic numbered categories.
  bool named_categories = false;
  /// Zipf exponent of the apps-per-category distribution (0 = uniform). Kept
  /// mild so no category dominates downloads (Fig. 5d: max 12%).
  double category_skew = 0.5;
  /// Fraction of users that ever post rated comments (§4.1: Anzhi's comment
  /// dataset covers 361,282 users — roughly 1.6% of its user base). Each
  /// commenter rates a per-user-propensity share of their downloads.
  /// Scaled-down test/bench runs typically raise this so enough commenting
  /// users exist for the affinity statistics.
  double commenter_fraction = 0.0;
  /// Fraction of free apps embedding a top-20 ad library (§6.3: 67.7%).
  double ad_fraction = 0.677;
  SegmentSpec free_segment;
  SegmentSpec paid_segment;
};

/// The four monitored marketplaces (SlideMe covers both Table-1 rows).
[[nodiscard]] StoreProfile anzhi();
[[nodiscard]] StoreProfile appchina();
[[nodiscard]] StoreProfile one_mobile();
[[nodiscard]] StoreProfile slideme();

/// SlideMe variant for the Fig.-17 time-series reproduction. Table 1's paid
/// row (111K → 914K downloads, an 8x jump inside the window) is numerically
/// inconsistent with Fig. 17's *declining* break-even curve, which requires
/// free per-app downloads to outgrow paid per-app downloads. This variant
/// keeps the end-of-window totals but gives the paid segment a
/// proportionally matured pre-crawl base, reproducing the figure's dynamics;
/// EXPERIMENTS.md documents the discrepancy.
[[nodiscard]] StoreProfile slideme_fig17();

[[nodiscard]] std::vector<StoreProfile> all_profiles();

/// Scaling applied at generation time.
struct GeneratorConfig {
  /// Multiplier on app counts (and developer counts follow).
  double app_scale = 0.2;
  /// Multiplier on download totals and user counts (d stays invariant).
  double download_scale = 0.001;
  /// Optional separate multiplier for the paid segment (0 = use
  /// download_scale). Paid totals are ~100x smaller than free totals
  /// (Table 1: SlideMe 914K paid vs 96M free), so a uniform scale that keeps
  /// the free simulation tractable starves the paid segment of resolution;
  /// the revenue analyses (Figs. 11-18) raise this instead.
  double paid_download_scale = 0.0;
  /// Generate the comment stream (needed only for the affinity studies).
  bool comments = false;
  /// PRNG seed; every run with the same profile+config+seed is identical.
  std::uint64_t seed = 0x5eed;
  /// Worker threads for the sharded stages (stream generation, day
  /// assignment, stream-index build); 0 = hardware concurrency. The
  /// generated store does not depend on this value.
  std::size_t threads = 0;
  /// Optional metrics sink threaded through to the model, event-log and
  /// par layers.
  obs::Registry* metrics = nullptr;
  /// Optional shard filter over GLOBAL user ids (free users first, then the
  /// paid pool — the same numbering an unfiltered run produces). When set,
  /// the generator builds every store-wide entity (categories, developers,
  /// apps, updates) identically to an unfiltered run, but only emits
  /// download and comment events of users passing the filter. The union of
  /// stores generated with disjoint filters covering every user is
  /// event-for-event identical to the unfiltered store (same user/app ids,
  /// days, ratings, per-user event order), which is what makes federated
  /// scatter-gather answers bit-exact. See docs/federation.md.
  std::function<bool(std::uint32_t)> user_filter{};
};

}  // namespace appstore::synth
