#include "synth/profile.hpp"

namespace appstore::synth {

// Paper-scale calibration sources:
//   * app counts, crawl windows, download totals: Table 1;
//   * model kinds/exponents: Fig. 8 (best-fit APP-CLUSTERING parameters) and
//     Fig. 11 (SlideMe free trunk ~0.85, paid pure Zipf ~1.72);
//   * user counts: Fig. 10 (U ≈ downloads of the most popular app);
//   * comment coverage: §4.1 (361,282 commenting users, 34 categories).

StoreProfile anzhi() {
  StoreProfile profile;
  profile.name = "Anzhi";
  profile.apps_first = 58'423;
  profile.apps_last = 60'196;
  profile.crawl_days = 60;
  profile.category_count = 34;
  profile.commenter_fraction = 0.016;
  profile.free_segment = SegmentSpec{.downloads_first = 1'396'000'000,
                                     .downloads_last = 2'816'000'000,
                                     .top_app_share = 0.008,
                                     .kind = models::ModelKind::kAppClustering,
                                     .zr = 1.5,
                                     .zc = 1.4,
                                     .p = 0.9};
  return profile;
}

StoreProfile appchina() {
  StoreProfile profile;
  profile.name = "AppChina";
  profile.apps_first = 33'183;
  profile.apps_last = 55'357;
  profile.crawl_days = 65;
  profile.category_count = 30;
  profile.free_segment = SegmentSpec{.downloads_first = 1'033'000'000,
                                     .downloads_last = 2'623'000'000,
                                     .top_app_share = 0.01,
                                     .kind = models::ModelKind::kAppClustering,
                                     .zr = 1.7,
                                     .zc = 1.4,
                                     .p = 0.9};
  return profile;
}

StoreProfile one_mobile() {
  StoreProfile profile;
  profile.name = "1Mobile";
  profile.apps_first = 128'455;
  profile.apps_last = 156'221;
  profile.crawl_days = 133;
  profile.category_count = 32;
  profile.free_segment = SegmentSpec{.downloads_first = 367'000'000,
                                     .downloads_last = 453'000'000,
                                     .top_app_share = 0.01,
                                     .kind = models::ModelKind::kAppClustering,
                                     .zr = 1.7,
                                     .zc = 1.5,
                                     .p = 0.95};
  return profile;
}

StoreProfile slideme() {
  StoreProfile profile;
  profile.name = "SlideMe";
  // Table 1 lists SlideMe free and paid separately; both cover 153 days.
  profile.apps_first = 12'296 + 4'606;
  profile.apps_last = 16'578 + 5'606;
  profile.crawl_days = 153;
  profile.paid_fraction = 0.253;  // §2.3
  profile.category_count = 20;
  profile.named_categories = true;
  profile.free_segment = SegmentSpec{.downloads_first = 63'000'000,
                                     .downloads_last = 96'000'000,
                                     .top_app_share = 0.01,
                                     .kind = models::ModelKind::kAppClustering,
                                     .zr = 1.1,
                                     .zc = 1.2,
                                     .p = 0.9};
  // Paid apps: clean power law (Fig. 11b), slope ~1.72. Users are more
  // selective; downloads ≈ purchases.
  profile.paid_segment = SegmentSpec{.downloads_first = 111'000,
                                     .downloads_last = 914'000,
                                     .top_app_share = 0.02,
                                     .kind = models::ModelKind::kZipf,
                                     .zr = 1.72,
                                     .zc = 0.0,
                                     .p = 0.0};
  return profile;
}

StoreProfile slideme_fig17() {
  StoreProfile profile = slideme();
  profile.name = "SlideMe-fig17";
  // Paid downloads mostly predate the window (mature segment); free
  // downloads keep growing faster per app — Fig. 17's premise.
  profile.paid_segment.downloads_first = 800'000;
  profile.free_segment.downloads_first = 55'000'000;
  return profile;
}

std::vector<StoreProfile> all_profiles() {
  return {anzhi(), appchina(), one_mobile(), slideme()};
}

}  // namespace appstore::synth
