#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "events/event_log.hpp"
#include "models/app_clustering_model.hpp"
#include "models/stream.hpp"
#include "par/parallel.hpp"
#include "stats/zipf.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace appstore::synth {

namespace {

constexpr std::string_view kComponent = "synth";

/// Developer pricing strategies (§6.3: 75% free-only, 15% paid-only, 10% both).
enum class Strategy : std::uint8_t { kFreeOnly, kPaidOnly, kBoth };

/// Samples one developer's portfolio size. Fig. 16a: 60–70% of developers
/// ship a single app, 95% fewer than 10, with rare prolific outliers (the
/// paper found accounts with 592 and 1402 apps).
std::uint32_t sample_portfolio_size(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.65) return 1;
  if (roll < 0.93) return 2 + static_cast<std::uint32_t>(rng.geometric(0.45));
  if (roll < 0.998) return 5 + static_cast<std::uint32_t>(rng.geometric(0.25));
  return 50 + static_cast<std::uint32_t>(rng.below(550));  // systematic publishers
}

Strategy sample_strategy(util::Rng& rng, double paid_fraction) {
  if (paid_fraction <= 0.0) return Strategy::kFreeOnly;
  const double roll = rng.uniform();
  if (roll < 0.75) return Strategy::kFreeOnly;
  if (roll < 0.90) return Strategy::kPaidOnly;
  return Strategy::kBoth;
}

/// One pre-planned app slot: owner + pricing decided up front so that the
/// developer strategy mix is exactly the drawn 75/15/10 (§6.3) and 'both'
/// developers end with at least one app of each kind. Note: the paper's
/// §2.3 paid share (25.3%) and §6.3 strategy mix are only jointly consistent
/// if paid developers run slightly larger portfolios; paid-only developers
/// therefore get a mild extra-app bump, which lands the paid share near 23%.
struct AppSlot {
  std::uint32_t developer;
  market::Pricing pricing;
};

/// Per-category price multipliers for the paid segment. Music is the
/// dominant revenue category (Fig. 15: 67.7% of revenue from 1.6% of apps),
/// which requires music apps to be both popular and expensive.
double category_price_multiplier(std::string_view category) {
  if (category == "music") return 4.5;
  if (category == "fun/games") return 1.4;
  if (category == "utilities") return 1.2;
  if (category == "productivity") return 1.3;
  if (category == "e-books") return 0.35;
  if (category == "wallpapers") return 0.3;
  return 1.0;
}

/// Category app-share weights for paid apps (Fig. 15 "Apps" series):
/// e-books hold 33.2% of paid apps, games 18.3%, music only 1.6%.
const std::vector<double>& paid_category_app_weights() {
  static const std::vector<double> weights = {
      // order matches slideme_categories()
      1.6,   // music
      18.3,  // fun/games
      5.0,   // utilities
      4.0,   // productivity
      5.0,   // entertainment
      2.5,   // religion
      2.5,   // travel
      4.0,   // educational
      2.0,   // social
      2.0,   // communications
      33.2,  // e-books
      4.0,   // lifestyle
      5.0,   // wallpapers
      2.5,   // health/fitness
      2.2,   // other
      1.5,   // collaboration
      1.5,   // location/maps
      1.5,   // home/hobby
      0.8,   // enterprise
      0.7,   // developer
  };
  return weights;
}

/// Head-of-distribution category weights for paid apps: the globally most
/// popular paid apps skew heavily toward music and games, producing the
/// revenue concentration of Fig. 15.
const std::vector<double>& paid_category_head_weights() {
  static const std::vector<double> weights = {
      50.0,  // music
      25.0,  // fun/games
      8.0,   // utilities
      7.0,   // productivity
      4.0,   // entertainment
      1.0, 1.0, 2.0, 1.0, 1.0,
      0.5,   // e-books (popular paid e-books are rare)
      1.0, 0.5, 1.0, 0.5, 0.3, 0.4, 0.5, 0.2, 0.1,
  };
  return weights;
}

struct CategoryPicker {
  stats::AliasTable body;
  stats::AliasTable head;
  /// Apps in the top `head_fraction` of a segment's ranks draw from `head`.
  double head_fraction = 0.0;

  [[nodiscard]] std::uint32_t pick(util::Rng& rng, double rank_percentile) const {
    if (head_fraction > 0.0 && rank_percentile < head_fraction) {
      return static_cast<std::uint32_t>(head.sample(rng));
    }
    return static_cast<std::uint32_t>(body.sample(rng));
  }
};

/// Price draw: lognormal around a ~$2 median with a heavy right tail,
/// clamped to the store's observed [$0.49, $49.99] range (Fig. 12 spans
/// 0-50 dollars), scaled by the category multiplier and by a popularity
/// gradient: globally popular paid apps are priced lower (competition for
/// volume), unpopular ones higher — this is what produces the paper's
/// negative price-downloads correlation (Fig. 12, Pearson -0.229) while
/// music stays expensive through its category multiplier.
market::Cents sample_price(util::Rng& rng, std::string_view category,
                           double rank_percentile) {
  const double base = rng.lognormal(std::log(1.9), 0.85);
  const double popularity_gradient = 0.22 + 1.8 * rank_percentile;
  const double dollars = std::clamp(
      base * category_price_multiplier(category) * popularity_gradient, 0.49, 49.99);
  return market::dollars_to_cents(dollars);
}

/// Number of updates an app ships in the window (Fig. 4): >80% of apps have
/// none; the top-10% most popular apps update somewhat more often (§3.2:
/// 60–75% of them have no updates); 99% of apps stay under ~4–6 updates.
std::uint32_t sample_update_count(util::Rng& rng, bool is_top_decile) {
  const double none_probability = is_top_decile ? 0.68 : 0.86;
  if (rng.uniform() < none_probability) return 0;
  return 1 + static_cast<std::uint32_t>(rng.geometric(0.62));
}

/// Commenting propensity mixture: most users rarely comment, a minority
/// comment on a large share of their downloads. Calibrated against Fig. 5a
/// (92% of commenting users leave <= 10 comments, 99% <= 30) for users with
/// ~100-125 downloads (the d the Table-1 totals imply).
double sample_comment_propensity(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.80) return 0.03;
  if (roll < 0.95) return 0.08;
  return 0.25;
}

}  // namespace

const std::vector<std::string>& slideme_categories() {
  static const std::vector<std::string> names = {
      "music",         "fun/games",  "utilities", "productivity",  "entertainment",
      "religion",      "travel",     "educational", "social",      "communications",
      "e-books",       "lifestyle",  "wallpapers", "health/fitness", "other",
      "collaboration", "location/maps", "home/hobby", "enterprise", "developer",
  };
  return names;
}

GeneratedStore generate(const StoreProfile& profile, const GeneratorConfig& config) {
  util::Rng rng(util::combine_seed(config.seed, util::hash64(profile.name)));

  GeneratedStore out;
  out.store = std::make_unique<market::AppStore>(profile.name);
  market::AppStore& store = *out.store;

  // ---- categories ----------------------------------------------------------
  std::uint32_t category_count = profile.category_count;
  if (profile.named_categories) {
    category_count = static_cast<std::uint32_t>(slideme_categories().size());
    for (const auto& name : slideme_categories()) store.add_category(name);
  } else {
    for (std::uint32_t c = 0; c < category_count; ++c) {
      store.add_category(util::format("category-{:>2}", c));
    }
  }

  // Free apps draw categories from a mildly skewed distribution so no single
  // category dominates (Fig. 5d); a shuffled assignment decorrelates category
  // identity from skew rank.
  std::vector<double> free_weights(category_count);
  {
    const stats::FiniteZipf skew(category_count, profile.category_skew);
    std::vector<std::uint32_t> permutation(category_count);
    for (std::uint32_t c = 0; c < category_count; ++c) permutation[c] = c;
    rng.shuffle(std::span<std::uint32_t>(permutation));
    for (std::uint32_t c = 0; c < category_count; ++c) {
      free_weights[permutation[c]] = skew.pmf(c + 1);
    }
  }
  const CategoryPicker free_picker{stats::AliasTable(free_weights),
                                   stats::AliasTable(free_weights), 0.0};

  CategoryPicker paid_picker = free_picker;
  if (profile.named_categories) {
    paid_picker = CategoryPicker{stats::AliasTable(paid_category_app_weights()),
                                 stats::AliasTable(paid_category_head_weights()), 0.02};
  }

  // ---- scaled totals -------------------------------------------------------
  const auto scale_count = [](std::uint64_t paper, double factor) {
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                          std::llround(static_cast<double>(paper) * factor)));
  };
  const std::uint64_t apps_first = scale_count(profile.apps_first, config.app_scale);
  const std::uint64_t apps_last =
      std::max(apps_first + 1, scale_count(profile.apps_last, config.app_scale));

  // ---- developers & pricing plan --------------------------------------------
  // Developers (strategy + portfolio size) are generated until their slots
  // cover all apps; each slot carries its pricing. Shuffling the slots then
  // decorrelates developer identity from global popularity rank.
  std::vector<market::DeveloperId> developer_ids;
  std::vector<AppSlot> slots;
  slots.reserve(apps_last + 16);
  while (slots.size() < apps_last) {
    const Strategy strategy = sample_strategy(rng, profile.paid_fraction);
    std::uint32_t size = sample_portfolio_size(rng);
    if (strategy == Strategy::kPaidOnly && rng.chance(0.35)) {
      size += 1 + static_cast<std::uint32_t>(rng.geometric(0.5));
    }
    if (strategy == Strategy::kBoth) size = std::max<std::uint32_t>(size, 2);
    // Trim only the final developer so totals match exactly.
    size = std::min<std::uint32_t>(size, static_cast<std::uint32_t>(apps_last - slots.size()));
    if (size == 0) break;

    const auto dev_index = static_cast<std::uint32_t>(developer_ids.size());
    developer_ids.push_back(store.add_developer(util::format("dev-{}", dev_index)));
    for (std::uint32_t k = 0; k < size; ++k) {
      market::Pricing pricing = market::Pricing::kFree;
      switch (strategy) {
        case Strategy::kFreeOnly: break;
        case Strategy::kPaidOnly: pricing = market::Pricing::kPaid; break;
        case Strategy::kBoth:
          // Guarantee one of each, then coin-flip the remainder.
          if (k == 1 || (k >= 2 && rng.chance(0.5))) pricing = market::Pricing::kPaid;
          break;
      }
      slots.push_back(AppSlot{dev_index, pricing});
    }
  }
  rng.shuffle(std::span<AppSlot>(slots));

  // ---- apps ----------------------------------------------------------------
  // Creation order is global quality order across the whole store; each
  // segment's rank order is the subsequence of its apps. Release days are
  // independent of quality: apps_first random apps predate the crawl.
  std::vector<market::Day> release_days(apps_last, -1);
  {
    const std::uint64_t newcomers = apps_last - apps_first;
    for (std::uint64_t k = 0; k < newcomers; ++k) {
      release_days[k] = static_cast<market::Day>(
          rng.below(static_cast<std::uint64_t>(profile.crawl_days)) + 1);
    }
    rng.shuffle(std::span<market::Day>(release_days));
  }

  for (std::uint64_t g = 0; g < apps_last; ++g) {
    const AppSlot& slot = slots[g];
    const bool paid = slot.pricing == market::Pricing::kPaid;
    const market::Pricing pricing = slot.pricing;
    const auto& picker = paid ? paid_picker : free_picker;
    // Percentile within the segment so far approximates the final segment
    // percentile (segment membership is an i.i.d. thinning of global order).
    const double percentile =
        static_cast<double>(g) / static_cast<double>(apps_last);
    const std::uint32_t category = picker.pick(rng, percentile);
    const market::CategoryId category_id{category};
    const market::DeveloperId developer = developer_ids[slot.developer];

    market::Cents price = 0;
    if (paid) price = sample_price(rng, store.category(category_id).name, percentile);

    const market::AppId app =
        store.add_app(util::format("app-{}", g), developer, category_id, pricing, price,
                      release_days[g]);
    if (paid) {
      out.paid_rank_order.push_back(app);
    } else {
      out.free_rank_order.push_back(app);
      store.set_has_ads(app, rng.chance(profile.ad_fraction));
    }
  }

  // ---- updates --------------------------------------------------------------
  for (std::uint64_t g = 0; g < apps_last; ++g) {
    const bool top_decile = g < apps_last / 10;
    const std::uint32_t updates = sample_update_count(rng, top_decile);
    std::vector<market::Day> days;
    days.reserve(updates);
    for (std::uint32_t u = 0; u < updates; ++u) {
      days.push_back(static_cast<market::Day>(
          rng.below(static_cast<std::uint64_t>(profile.crawl_days) + 1)));
    }
    std::sort(days.begin(), days.end());
    for (const auto day : days) {
      store.record_update(market::AppId{static_cast<std::uint32_t>(g)}, day);
    }
  }

  // ---- per-segment download generation --------------------------------------
  struct SegmentRun {
    const SegmentSpec* spec = nullptr;
    const std::vector<market::AppId>* rank_order = nullptr;
    models::ModelParams* params_out = nullptr;
    std::uint32_t user_offset = 0;
  };

  // Free users come first, then the paid pool (paid_user_offset in result).
  models::ModelParams free_params;
  models::ModelParams paid_params;
  std::uint32_t user_cursor = 0;

  const auto run_segment = [&](const SegmentSpec& spec,
                               const std::vector<market::AppId>& rank_order,
                               models::ModelParams& params_out, bool is_paid) {
    if (!spec.enabled() || rank_order.empty()) return;

    const double segment_scale = is_paid && config.paid_download_scale > 0.0
                                     ? config.paid_download_scale
                                     : config.download_scale;
    const std::uint64_t downloads_last = scale_count(spec.downloads_last, segment_scale);
    const std::uint64_t downloads_first =
        std::min(downloads_last, scale_count(spec.downloads_first, segment_scale));
    const std::uint64_t users = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(spec.top_app_share *
                                      static_cast<double>(downloads_last)));

    models::ModelParams params;
    params.app_count = static_cast<std::uint32_t>(rank_order.size());
    params.user_count = users;
    params.downloads_per_user =
        static_cast<double>(downloads_last) / static_cast<double>(users);
    params.zr = spec.zr;
    params.zc = spec.zc;
    params.p = spec.p;

    std::unique_ptr<models::DownloadModel> model;
    if (spec.kind == models::ModelKind::kAppClustering) {
      // Clusters = the store's categories; within-cluster rank follows the
      // segment's global order because rank_order is iterated in order.
      std::vector<std::uint32_t> assignment;
      assignment.reserve(rank_order.size());
      for (const auto app : rank_order) {
        assignment.push_back(store.app(app).category.value);
      }
      params.cluster_count = category_count;
      model = std::make_unique<models::AppClusteringModel>(
          params, models::ClusterLayout::from_assignment(std::move(assignment)));
    } else {
      params.cluster_count = 1;
      model = models::make_model(spec.kind, params);
    }

    util::log_info(kComponent, "{}: generating {} downloads for {} apps / {} users",
                   profile.name, downloads_last, params.app_count, params.user_count);

    // Users are added before generation so a shard filter can be phrased
    // over global user ids (user_offset + segment-local id).
    const std::uint32_t user_offset = user_cursor;
    store.add_users(static_cast<std::uint32_t>(users));
    user_cursor += static_cast<std::uint32_t>(users);

    models::StreamOptions stream_options;
    stream_options.max_requests = downloads_last;
    stream_options.metrics = config.metrics;
    stream_options.threads = config.threads;
    if (config.user_filter) {
      stream_options.user_filter = [&config, user_offset](std::uint32_t local) {
        return config.user_filter(user_offset + local);
      };
    }
    const models::StreamSlice slice =
        models::generate_stream_slice(*model, rng, stream_options);
    const events::EventLog& stream = slice.log;

    // Day assignment: the first `downloads_first` arrivals form the
    // pre-crawl history (day -1); the remainder spread uniformly over the
    // crawl window, giving a steady daily download rate as in Table 1.
    // Arrival indexes and totals are those of the UNION stream so a shard
    // slice assigns the same day to every row the unfiltered run would.
    const std::uint64_t during_crawl =
        slice.union_rows > downloads_first ? slice.union_rows - downloads_first : 0;
    const double per_day =
        during_crawl == 0
            ? 1.0
            : static_cast<double>(during_crawl) / static_cast<double>(profile.crawl_days);

    // Shard-wise columnar emission: the day of arrival k is a pure function
    // of k (plus the app's release day), so the batch columns are filled in
    // parallel and bulk-ingested; the live store's append_batch writes the
    // rows shard-wise in parallel too. Ordinals are assigned by the store as
    // row ids, making the result identical to a serial record_download loop
    // at every thread count.
    const std::size_t n = stream.size();
    std::vector<std::uint32_t> batch_user(n);
    std::vector<std::uint32_t> batch_app(n);
    std::vector<market::Day> batch_day(n);
    const par::Options par_options{.threads = config.threads, .metrics = config.metrics};
    par::parallel_for(n, par_options, [&](std::uint64_t k) {
      const std::uint64_t arrival = slice.arrival.empty() ? k : slice.arrival[k];
      market::Day day = -1;
      if (arrival >= downloads_first) {
        day = static_cast<market::Day>(
                  static_cast<double>(arrival - downloads_first) / per_day) +
              1;
        day = std::min<market::Day>(day, profile.crawl_days);
      }
      const market::AppId app = rank_order[stream.app()[k]];
      // Apps cannot be downloaded before release.
      const market::Day released = store.app(app).released;
      if (day < released) day = released;
      batch_user[k] = user_offset + stream.user()[k];
      batch_app[k] = app.value;
      batch_day[k] = day;
    });
    store.ingest_downloads(
        events::EventLog::from_columns(events::Columns::kDay, std::move(batch_user),
                                       std::move(batch_app), std::move(batch_day)),
        events::IngestOptions{.threads = config.threads});

    params_out = params;
  };

  run_segment(profile.free_segment, out.free_rank_order, free_params, false);
  out.paid_user_offset = user_cursor;
  run_segment(profile.paid_segment, out.paid_rank_order, paid_params, true);

  out.free_params = free_params;
  out.paid_params = paid_params;

  // ---- comments --------------------------------------------------------------
  if (config.comments && profile.commenter_fraction > 0.0) {
    // Per-user derived comment streams: the commenter coin, propensity, and
    // every per-download comment/rating draw come from
    // rng::derive(comment_base, global user id), consumed in the user's own
    // download order. A user's comment stream is therefore identical whether
    // the store holds the whole ecosystem or just that user's shard slice
    // (the download log restricted to one user is the same sequence either
    // way) — the property the federation parity suite depends on.
    const std::uint64_t comment_base = rng();
    const std::uint64_t spam_base = rng();
    struct Commenter {
      util::Rng rng{0};
      float propensity = 0.0F;
    };
    // Per-user dispatch: 0 = unseen, 1 = non-commenter, 2+k = commenters[k].
    std::vector<std::uint32_t> state(store.user_count(), 0);
    std::vector<Commenter> commenters;
    const auto dl_user = store.download_log().user();
    const auto dl_app = store.download_log().app();
    const auto dl_day = store.download_log().day();
    for (std::size_t i = 0; i < store.download_log().size(); ++i) {
      const std::uint32_t user = dl_user[i];
      if (state[user] == 0) {
        util::Rng user_rng = util::rng::derive(comment_base, user);
        if (user_rng.chance(profile.commenter_fraction)) {
          Commenter commenter;
          commenter.propensity =
              static_cast<float>(sample_comment_propensity(user_rng));
          commenter.rng = user_rng;
          state[user] = 2 + static_cast<std::uint32_t>(commenters.size());
          commenters.push_back(commenter);
        } else {
          state[user] = 1;
        }
      }
      if (state[user] == 1) continue;
      Commenter& commenter = commenters[state[user] - 2];
      if (commenter.rng.uniform() < commenter.propensity) {
        const auto rating =
            static_cast<std::uint8_t>(commenter.rng.uniform() < 0.7 ? 5 : 4);
        store.record_comment(market::UserId{user}, market::AppId{dl_app[i]},
                             std::max<market::Day>(dl_day[i], 0), rating);
      }
    }
    // Spam accounts: a handful of users posting hundreds of comments on
    // random apps (§4.1 — excluded from the affinity analysis by the
    // min-samples rule). Each account has its own derived stream; under a
    // shard filter the draws are made everywhere but the comments land only
    // on the owning shard, so the union matches the unfiltered store.
    const std::uint32_t spam_users = std::max<std::uint32_t>(2, store.user_count() / 20000);
    for (std::uint32_t s = 0; s < spam_users; ++s) {
      util::Rng spam_rng = util::rng::derive(spam_base, s);
      const auto user =
          static_cast<std::uint32_t>(spam_rng.below(store.user_count()));
      const std::uint64_t burst = 150 + spam_rng.below(850);
      const bool owned = !config.user_filter || config.user_filter(user);
      for (std::uint64_t k = 0; k < burst; ++k) {
        const market::AppId app{static_cast<std::uint32_t>(spam_rng.below(store.apps().size()))};
        const auto day = static_cast<market::Day>(
            spam_rng.below(static_cast<std::uint64_t>(profile.crawl_days) + 1));
        const auto rating = static_cast<std::uint8_t>(1 + spam_rng.below(5));
        if (owned) store.record_comment(market::UserId{user}, app, day, rating);
      }
    }
  }

  // The live store indexes as it ingests; nothing left to build. Kept as a
  // marker that the store is fully populated from here on.
  store.build_stream_index();

  return out;
}

std::vector<std::uint64_t> downloads_at_day(const market::AppStore& store, market::Day day) {
  std::vector<std::uint64_t> counts(store.apps().size(), 0);
  const auto apps = store.download_log().app();
  const auto days = store.download_log().day();
  for (std::size_t i = 0; i < store.download_log().size(); ++i) {
    if (days[i] <= day) ++counts[apps[i]];
  }
  return counts;
}

std::vector<double> downloads_by_rank_at_day(const market::AppStore& store, market::Day day,
                                             market::Pricing pricing) {
  const auto counts = downloads_at_day(store, day);
  std::vector<double> filtered;
  for (const auto& app : store.apps()) {
    // Only apps already listed on `day`: the store's directory (and hence
    // the crawled dataset) does not contain unreleased apps.
    if (app.pricing == pricing && app.released <= day) {
      filtered.push_back(static_cast<double>(counts[app.id.index()]));
    }
  }
  std::sort(filtered.begin(), filtered.end(), std::greater<>());
  return filtered;
}

}  // namespace appstore::synth
