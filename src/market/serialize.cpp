#include "market/serialize.hpp"

#include <cstring>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::market {

namespace {

[[nodiscard]] std::uint64_t parse_field_u64(const std::string& text, const char* what) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    throw std::runtime_error(util::format("load_store: bad {} '{}'", what, text));
  }
  return value;
}

[[nodiscard]] std::int64_t parse_field_i64(const std::string& text, const char* what) {
  if (!text.empty() && text[0] == '-') {
    return -static_cast<std::int64_t>(parse_field_u64(text.substr(1), what));
  }
  return static_cast<std::int64_t>(parse_field_u64(text, what));
}

[[nodiscard]] util::CsvTable read_required(const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("load_store: missing " + path.string());
  }
  return util::read_csv(path);
}

}  // namespace

void save_entities(const AppStore& store, const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);

  {
    util::CsvWriter meta(directory / "meta.csv");
    meta.write_row({"name", "users"});
    meta.row(store.name(), static_cast<std::uint64_t>(store.user_count()));
  }
  {
    util::CsvWriter categories(directory / "categories.csv");
    categories.write_row({"id", "name"});
    for (const auto& category : store.categories()) {
      categories.row(static_cast<std::uint64_t>(category.id.value), category.name);
    }
  }
  {
    util::CsvWriter developers(directory / "developers.csv");
    developers.write_row({"id", "name"});
    for (const auto& developer : store.developers()) {
      developers.row(static_cast<std::uint64_t>(developer.id.value), developer.name);
    }
  }
  {
    util::CsvWriter apps(directory / "apps.csv");
    apps.write_row({"id", "name", "developer", "category", "paid", "price_cents",
                    "released", "has_ads", "price_sum_bits", "price_samples"});
    for (const auto& app : store.apps()) {
      const auto [price_sum, price_samples] = store.price_stats(app.id);
      std::uint64_t price_sum_bits = 0;
      static_assert(sizeof price_sum_bits == sizeof price_sum);
      std::memcpy(&price_sum_bits, &price_sum, sizeof price_sum_bits);
      apps.row(static_cast<std::uint64_t>(app.id.value), app.name,
               static_cast<std::uint64_t>(app.developer.value),
               static_cast<std::uint64_t>(app.category.value),
               app.pricing == Pricing::kPaid ? 1 : 0, static_cast<std::int64_t>(app.price),
               static_cast<std::int64_t>(app.released), app.has_ads ? 1 : 0,
               price_sum_bits, static_cast<std::uint64_t>(price_samples));
    }
  }
  {
    util::CsvWriter updates(directory / "updates.csv");
    updates.write_row({"app", "day"});
    for (const auto& event : store.update_events()) {
      updates.row(static_cast<std::uint64_t>(event.app.value),
                  static_cast<std::int64_t>(event.day));
    }
  }
}

void save_store(const AppStore& store, const std::filesystem::path& directory) {
  save_entities(store, directory);
  {
    util::CsvWriter downloads(directory / "downloads.csv");
    downloads.write_row({"user", "app", "day"});
    const auto& log = store.download_log();
    for (std::size_t i = 0; i < log.size(); ++i) {
      downloads.row(static_cast<std::uint64_t>(log.user()[i]),
                    static_cast<std::uint64_t>(log.app()[i]),
                    static_cast<std::int64_t>(log.day()[i]));
    }
  }
  {
    util::CsvWriter comments(directory / "comments.csv");
    comments.write_row({"user", "app", "day", "rating"});
    const auto& log = store.comment_log();
    for (std::size_t i = 0; i < log.size(); ++i) {
      comments.row(static_cast<std::uint64_t>(log.user()[i]),
                   static_cast<std::uint64_t>(log.app()[i]),
                   static_cast<std::int64_t>(log.day()[i]),
                   static_cast<std::uint64_t>(log.rating()[i]));
    }
  }
}

std::unique_ptr<AppStore> load_entities(const std::filesystem::path& directory,
                                        const events::LiveOptions& live) {
  const auto meta = read_required(directory / "meta.csv");
  if (meta.rows.empty() || meta.rows[0].size() < 2) {
    throw std::runtime_error("load_store: malformed meta.csv");
  }
  auto store = std::make_unique<AppStore>(meta.rows[0][0], live);
  store->add_users(
      static_cast<std::uint32_t>(parse_field_u64(meta.rows[0][1], "user count")));

  for (const auto& row : read_required(directory / "categories.csv").rows) {
    if (row.size() < 2) throw std::runtime_error("load_store: malformed categories.csv");
    (void)store->add_category(row[1]);
  }
  for (const auto& row : read_required(directory / "developers.csv").rows) {
    if (row.size() < 2) throw std::runtime_error("load_store: malformed developers.csv");
    (void)store->add_developer(row[1]);
  }
  for (const auto& row : read_required(directory / "apps.csv").rows) {
    if (row.size() < 8) throw std::runtime_error("load_store: malformed apps.csv");
    const bool paid = row[4] == "1";
    const AppId app = store->add_app(
        row[1], DeveloperId{static_cast<std::uint32_t>(parse_field_u64(row[2], "developer"))},
        CategoryId{static_cast<std::uint32_t>(parse_field_u64(row[3], "category"))},
        paid ? Pricing::kPaid : Pricing::kFree,
        paid ? static_cast<Cents>(parse_field_i64(row[5], "price")) : 0,
        static_cast<Day>(parse_field_i64(row[6], "released")));
    store->set_has_ads(app, row[7] == "1");
    // Older files (pre-durability) lack the accumulator columns; the
    // add_app seed is then the best available reconstruction.
    if (row.size() >= 10) {
      const std::uint64_t bits = parse_field_u64(row[8], "price_sum_bits");
      double price_sum = 0.0;
      std::memcpy(&price_sum, &bits, sizeof price_sum);
      store->restore_price_stats(
          app, price_sum,
          static_cast<std::uint32_t>(parse_field_u64(row[9], "price_samples")));
    }
  }
  for (const auto& row : read_required(directory / "updates.csv").rows) {
    if (row.size() < 2) throw std::runtime_error("load_store: malformed updates.csv");
    store->record_update(AppId{static_cast<std::uint32_t>(parse_field_u64(row[0], "app"))},
                         static_cast<Day>(parse_field_i64(row[1], "day")));
  }
  return store;
}

std::unique_ptr<AppStore> load_store(const std::filesystem::path& directory) {
  auto store = load_entities(directory);
  for (const auto& row : read_required(directory / "downloads.csv").rows) {
    if (row.size() < 3) throw std::runtime_error("load_store: malformed downloads.csv");
    store->record_download(
        UserId{static_cast<std::uint32_t>(parse_field_u64(row[0], "user"))},
        AppId{static_cast<std::uint32_t>(parse_field_u64(row[1], "app"))},
        static_cast<Day>(parse_field_i64(row[2], "day")));
  }
  for (const auto& row : read_required(directory / "comments.csv").rows) {
    if (row.size() < 4) throw std::runtime_error("load_store: malformed comments.csv");
    store->record_comment(
        UserId{static_cast<std::uint32_t>(parse_field_u64(row[0], "user"))},
        AppId{static_cast<std::uint32_t>(parse_field_u64(row[1], "app"))},
        static_cast<Day>(parse_field_i64(row[2], "day")),
        static_cast<std::uint8_t>(parse_field_u64(row[3], "rating")));
  }
  store->check_invariants();
  store->build_stream_index();
  return store;
}

}  // namespace appstore::market
