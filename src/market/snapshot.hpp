// Daily snapshots and dataset summaries (Table 1).
//
// The crawl re-visits each store daily; a Snapshot captures the aggregate
// state on one day, and SnapshotSeries derives the Table-1 columns:
// total apps first/last day, average new apps per day, total downloads
// first/last day, average daily downloads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "market/store.hpp"
#include "market/types.hpp"

namespace appstore::market {

struct Snapshot {
  Day day = 0;
  std::uint64_t total_apps = 0;
  std::uint64_t total_downloads = 0;
};

class SnapshotSeries {
 public:
  SnapshotSeries() = default;

  /// Appends a snapshot; days must be strictly increasing.
  void add(Snapshot snapshot);

  [[nodiscard]] std::span<const Snapshot> snapshots() const noexcept { return snapshots_; }
  [[nodiscard]] bool empty() const noexcept { return snapshots_.empty(); }
  [[nodiscard]] const Snapshot& first() const { return snapshots_.front(); }
  [[nodiscard]] const Snapshot& last() const { return snapshots_.back(); }

  /// Average newly-listed apps per day over the window.
  [[nodiscard]] double new_apps_per_day() const;

  /// Average downloads per day over the window.
  [[nodiscard]] double daily_downloads() const;

 private:
  std::vector<Snapshot> snapshots_;
};

/// One Table-1 row.
struct DatasetSummary {
  std::string store;
  Day first_day = 0;
  Day last_day = 0;
  std::uint64_t apps_first_day = 0;
  std::uint64_t apps_last_day = 0;
  double new_apps_per_day = 0.0;
  std::uint64_t downloads_first_day = 0;
  std::uint64_t downloads_last_day = 0;
  double daily_downloads = 0.0;
};

[[nodiscard]] DatasetSummary summarize(const std::string& store_name,
                                       const SnapshotSeries& series);

/// Rebuilds the snapshot series of a fully-populated store by replaying its
/// event streams day by day over [0, horizon].
[[nodiscard]] SnapshotSeries replay_snapshots(const AppStore& store, Day horizon);

}  // namespace appstore::market
