// AppStore: the in-memory marketplace database.
//
// Owns all entities and event streams for one monitored store, maintains
// derived counters (per-app downloads, per-category app counts, average
// prices) and enforces cross-entity invariants: every event references valid
// IDs, download counts equal the number of download events, and per-user
// streams are chronologically ordered.
//
// Event storage is live and columnar: one events::LiveEventLog per event
// kind (downloads, comments). Writers (record_download, record_comment,
// ingest_downloads) append lock-free and publish through an atomic read
// frontier; readers take FrontierSnapshot views (download_log(),
// comment_log(), the *_stream() accessors) that are consistent prefixes of
// the log, with per-user chronological streams served by the tiered index —
// no build step, no stall. Ingest-while-serving contract:
//
//   * any number of threads may record/ingest events concurrently with any
//     number of snapshot readers;
//   * entity mutation (add_app, add_users, set_price, ...) is construction-
//     phase only — quiesce event writers around it;
//   * counters (downloads_of, total_downloads) are monitoring reads during
//     concurrent ingest: each is atomically updated, but they can run a few
//     events ahead of or behind the published frontier. check_invariants()
//     requires a quiesced store.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "events/event_log.hpp"
#include "events/live_log.hpp"
#include "market/entities.hpp"
#include "market/events.hpp"
#include "market/types.hpp"

namespace appstore::market {

class AppStore {
 public:
  /// `live` shapes both event logs (capacity, segment size, mmap backing —
  /// a non-empty backing_file gets ".downloads"/".comments" suffixes).
  explicit AppStore(std::string name, const events::LiveOptions& live = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- construction -------------------------------------------------------

  CategoryId add_category(std::string name);
  DeveloperId add_developer(std::string name);
  UserId add_user();
  /// Adds `count` anonymous users at once; returns the first new id.
  UserId add_users(std::uint32_t count);

  /// Adds an app; `developer` and `category` must be valid.
  AppId add_app(std::string name, DeveloperId developer, CategoryId category, Pricing pricing,
                Cents price, Day released);

  /// Records an app update on `day` (Fig. 4 series).
  void record_update(AppId app, Day day);

  /// Records a download; increments the per-app counter. Lock-free; may run
  /// concurrently with other writers and with snapshot readers.
  void record_download(UserId user, AppId app, Day day);

  /// Records a rated comment (the affinity substrate, §4). Lock-free.
  void record_comment(UserId user, AppId app, Day day, std::uint8_t rating);

  /// Bulk download ingestion: validates and appends a column batch produced
  /// elsewhere (e.g. the shard-wise synth generator) as one atomically
  /// published block — readers see none or all of it. Ordinals are assigned
  /// by the store (row ids), so the result is bit-identical to the
  /// equivalent record_download() loop at any options.threads; a batch that
  /// carries an ordinal column is only validated against that sequence.
  /// Throws std::invalid_argument on any invalid id or ordinal mismatch.
  void ingest_downloads(const events::EventLog& batch,
                        const events::IngestOptions& options = {});

  /// Bulk comment ingestion — the comment-log twin of ingest_downloads
  /// (same validation, same atomic publication, same determinism contract).
  void ingest_comments(const events::EventLog& batch,
                       const events::IngestOptions& options = {});

  /// Replaces both live logs with pre-built ones — the checkpoint recovery
  /// fast path (load_segmented builds the logs straight from ALSG segments;
  /// re-ingesting them through ingest_* would pay the arena+index work a
  /// second time). Validates every event against the entity tables, then
  /// rebuilds the download counters from the adopted log. Requires a
  /// quiesced store; throws std::invalid_argument on a column-mask mismatch
  /// or an event with an out-of-range id (the store is left unchanged).
  void adopt_event_logs(std::unique_ptr<events::LiveEventLog> downloads,
                        std::unique_ptr<events::LiveEventLog> comments);

  /// Restores the price-observation accumulator exactly as a checkpoint
  /// recorded it (sum serialized as raw IEEE-754 bits, so recovery is
  /// bit-identical to the run that never crashed). Overwrites whatever
  /// add_app seeded. Recovery-only; throws on an invalid app.
  void restore_price_stats(AppId app, double price_sum_dollars,
                           std::uint32_t price_samples);

  /// Updates the list price of a paid app starting at `day`; the average
  /// price (used by the revenue analysis) is tracked per observed day.
  void set_price(AppId app, Cents price, Day day);

  /// Marks ad-library presence for an app (§6.3).
  void set_has_ads(AppId app, bool has_ads);

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::span<const Category> categories() const noexcept { return categories_; }
  [[nodiscard]] std::span<const Developer> developers() const noexcept { return developers_; }
  [[nodiscard]] std::span<const App> apps() const noexcept { return apps_; }
  [[nodiscard]] std::uint32_t user_count() const noexcept { return user_count_; }

  [[nodiscard]] const Category& category(CategoryId id) const { return categories_.at(id.index()); }
  [[nodiscard]] const Developer& developer(DeveloperId id) const {
    return developers_.at(id.index());
  }
  [[nodiscard]] const App& app(AppId id) const { return apps_.at(id.index()); }

  [[nodiscard]] std::uint64_t downloads_of(AppId id) const;
  [[nodiscard]] std::uint64_t total_downloads() const noexcept;

  /// Mean of the price observations recorded via set_price/add_app — the
  /// paper uses the average price over the measurement window (§6.1).
  [[nodiscard]] double average_price_dollars(AppId id) const;

  /// Raw price-observation accumulator {sum of dollars, sample count} — the
  /// state checkpoints persist (restore_price_stats is its inverse).
  [[nodiscard]] std::pair<double, std::uint32_t> price_stats(AppId id) const {
    return {price_sum_dollars_.at(id.index()), price_samples_.at(id.index())};
  }

  // --- event access (columnar, frontier-consistent) -------------------------

  /// Snapshot of the download log's published prefix: user/app/day/ordinal
  /// columns in record order. Cheap (one atomic load); spans stay valid for
  /// the store's lifetime.
  [[nodiscard]] events::FrontierSnapshot download_log() const noexcept {
    return download_live_->snapshot();
  }
  /// Snapshot of the comment log (adds the rating column).
  [[nodiscard]] events::FrontierSnapshot comment_log() const noexcept {
    return comment_live_->snapshot();
  }

  /// The live stores themselves (frontier, capacity, arena introspection).
  [[nodiscard]] const events::LiveEventLog& download_live() const noexcept {
    return *download_live_;
  }
  [[nodiscard]] const events::LiveEventLog& comment_live() const noexcept {
    return *comment_live_;
  }

  /// Monotonic ingest epoch: advances whenever any event publishes. Two
  /// equal epochs bracket an identical published state — what the service
  /// keys its response cache on.
  [[nodiscard]] std::uint64_t ingest_epoch() const noexcept {
    return download_live_->frontier() + comment_live_->frontier();
  }

  /// Backward-compatible no-op: the live store indexes as it ingests. Kept
  /// so batch-era call sites (load_store, generators, tests) stay valid.
  void build_stream_index(const events::BuildOptions& options = {});
  [[nodiscard]] bool stream_index_built() const noexcept { return true; }

  /// Chronological per-user views over the current frontier.
  [[nodiscard]] events::LiveStreamView download_stream(UserId user) const {
    return download_live_->snapshot().stream(user.value);
  }
  [[nodiscard]] events::LiveStreamView comment_stream(UserId user) const {
    return comment_live_->snapshot().stream(user.value);
  }

  [[nodiscard]] std::span<const UpdateEvent> update_events() const noexcept {
    return update_events_;
  }

  /// Number of apps in each category (index = CategoryId).
  [[nodiscard]] std::vector<std::uint32_t> apps_per_category() const;

  /// Download counts per app (index = AppId), as doubles for the stats layer.
  [[nodiscard]] std::vector<double> download_counts() const;

  /// Download counts restricted to apps with the given pricing.
  [[nodiscard]] std::vector<double> download_counts(Pricing pricing) const;

  /// Download counts sorted descending — the rank–download curve of Fig. 3.
  [[nodiscard]] std::vector<double> downloads_by_rank() const;
  [[nodiscard]] std::vector<double> downloads_by_rank(Pricing pricing) const;

  /// Validates all invariants; throws std::logic_error with a description of
  /// the first violation. Used by tests and after deserialization. Requires
  /// a quiesced store (no in-flight writers).
  void check_invariants() const;

 private:
  std::string name_;
  std::vector<Category> categories_;
  std::vector<Developer> developers_;
  std::vector<App> apps_;
  std::uint32_t user_count_ = 0;

  std::vector<std::uint64_t> downloads_;      // per app; atomic_ref-updated
  std::uint64_t total_downloads_ = 0;         // atomic_ref-updated
  std::vector<double> price_sum_dollars_;     // per app, sum of observations
  std::vector<std::uint32_t> price_samples_;  // per app

  std::unique_ptr<events::LiveEventLog> download_live_;
  std::unique_ptr<events::LiveEventLog> comment_live_;
  std::vector<UpdateEvent> update_events_;
};

}  // namespace appstore::market
