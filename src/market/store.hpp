// AppStore: the in-memory marketplace database.
//
// Owns all entities and event streams for one monitored store, maintains
// derived counters (per-app downloads, per-category app counts, average
// prices) and enforces cross-entity invariants: every event references valid
// IDs, download counts equal the number of download events, and per-user
// streams are chronologically ordered.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "market/entities.hpp"
#include "market/events.hpp"
#include "market/types.hpp"

namespace appstore::market {

class AppStore {
 public:
  explicit AppStore(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- construction -------------------------------------------------------

  CategoryId add_category(std::string name);
  DeveloperId add_developer(std::string name);
  UserId add_user();
  /// Adds `count` anonymous users at once; returns the first new id.
  UserId add_users(std::uint32_t count);

  /// Adds an app; `developer` and `category` must be valid.
  AppId add_app(std::string name, DeveloperId developer, CategoryId category, Pricing pricing,
                Cents price, Day released);

  /// Records an app update on `day` (Fig. 4 series).
  void record_update(AppId app, Day day);

  /// Records a download; increments the per-app counter.
  void record_download(UserId user, AppId app, Day day);

  /// Records a rated comment (the affinity substrate, §4).
  void record_comment(UserId user, AppId app, Day day, std::uint8_t rating);

  /// Updates the list price of a paid app starting at `day`; the average
  /// price (used by the revenue analysis) is tracked per observed day.
  void set_price(AppId app, Cents price, Day day);

  /// Marks ad-library presence for an app (§6.3).
  void set_has_ads(AppId app, bool has_ads);

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::span<const Category> categories() const noexcept { return categories_; }
  [[nodiscard]] std::span<const Developer> developers() const noexcept { return developers_; }
  [[nodiscard]] std::span<const App> apps() const noexcept { return apps_; }
  [[nodiscard]] std::uint32_t user_count() const noexcept { return user_count_; }

  [[nodiscard]] const Category& category(CategoryId id) const { return categories_.at(id.index()); }
  [[nodiscard]] const Developer& developer(DeveloperId id) const {
    return developers_.at(id.index());
  }
  [[nodiscard]] const App& app(AppId id) const { return apps_.at(id.index()); }

  [[nodiscard]] std::uint64_t downloads_of(AppId id) const { return downloads_.at(id.index()); }
  [[nodiscard]] std::uint64_t total_downloads() const noexcept { return total_downloads_; }

  /// Mean of the price observations recorded via set_price/add_app — the
  /// paper uses the average price over the measurement window (§6.1).
  [[nodiscard]] double average_price_dollars(AppId id) const;

  [[nodiscard]] std::span<const DownloadEvent> download_events() const noexcept {
    return download_events_;
  }
  [[nodiscard]] std::span<const CommentEvent> comment_events() const noexcept {
    return comment_events_;
  }
  [[nodiscard]] std::span<const UpdateEvent> update_events() const noexcept {
    return update_events_;
  }

  /// Number of apps in each category (index = CategoryId).
  [[nodiscard]] std::vector<std::uint32_t> apps_per_category() const;

  /// Download counts per app (index = AppId), as doubles for the stats layer.
  [[nodiscard]] std::vector<double> download_counts() const;

  /// Download counts restricted to apps with the given pricing.
  [[nodiscard]] std::vector<double> download_counts(Pricing pricing) const;

  /// Download counts sorted descending — the rank–download curve of Fig. 3.
  [[nodiscard]] std::vector<double> downloads_by_rank() const;
  [[nodiscard]] std::vector<double> downloads_by_rank(Pricing pricing) const;

  /// Chronological (day, ordinal) per-user comment streams; users without
  /// comments get empty vectors. Index = UserId.
  [[nodiscard]] std::vector<std::vector<CommentEvent>> comment_streams() const;

  /// Chronological per-user download streams. Index = UserId.
  [[nodiscard]] std::vector<std::vector<DownloadEvent>> download_streams() const;

  /// Validates all invariants; throws std::logic_error with a description of
  /// the first violation. Used by tests and after deserialization.
  void check_invariants() const;

 private:
  std::string name_;
  std::vector<Category> categories_;
  std::vector<Developer> developers_;
  std::vector<App> apps_;
  std::uint32_t user_count_ = 0;

  std::vector<std::uint64_t> downloads_;      // per app
  std::uint64_t total_downloads_ = 0;
  std::vector<double> price_sum_dollars_;     // per app, sum of observations
  std::vector<std::uint32_t> price_samples_;  // per app

  std::vector<DownloadEvent> download_events_;
  std::vector<CommentEvent> comment_events_;
  std::vector<UpdateEvent> update_events_;

  std::uint32_t next_download_ordinal_ = 0;
  std::uint32_t next_comment_ordinal_ = 0;
};

}  // namespace appstore::market
