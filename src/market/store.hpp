// AppStore: the in-memory marketplace database.
//
// Owns all entities and event streams for one monitored store, maintains
// derived counters (per-app downloads, per-category app counts, average
// prices) and enforces cross-entity invariants: every event references valid
// IDs, download counts equal the number of download events, and per-user
// streams are chronologically ordered.
//
// Event storage is columnar: one events::EventLog per event kind (downloads,
// comments), with a CSR per-user index built by build_stream_index(). The
// per-user accessors download_stream()/comment_stream() are zero-copy views;
// the legacy materializing APIs (download_events(), comment_streams(), ...)
// are kept as deprecated forwarders that copy rows out of the log.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "events/event_log.hpp"
#include "market/entities.hpp"
#include "market/events.hpp"
#include "market/types.hpp"

namespace appstore::market {

class AppStore {
 public:
  explicit AppStore(std::string name)
      : name_(std::move(name)),
        download_log_(events::Columns::kDay | events::Columns::kOrdinal),
        comment_log_(events::Columns::kDay | events::Columns::kOrdinal |
                     events::Columns::kRating) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- construction -------------------------------------------------------

  CategoryId add_category(std::string name);
  DeveloperId add_developer(std::string name);
  UserId add_user();
  /// Adds `count` anonymous users at once; returns the first new id.
  UserId add_users(std::uint32_t count);

  /// Adds an app; `developer` and `category` must be valid.
  AppId add_app(std::string name, DeveloperId developer, CategoryId category, Pricing pricing,
                Cents price, Day released);

  /// Records an app update on `day` (Fig. 4 series).
  void record_update(AppId app, Day day);

  /// Records a download; increments the per-app counter.
  void record_download(UserId user, AppId app, Day day);

  /// Records a rated comment (the affinity substrate, §4).
  void record_comment(UserId user, AppId app, Day day, std::uint8_t rating);

  /// Bulk download ingestion: validates and adopts a column batch produced
  /// elsewhere (e.g. the shard-wise synth generator). The batch's ordinals
  /// must continue this store's download ordinal sequence (first ordinal ==
  /// current download count, consecutive after that), so the result is
  /// byte-identical to the equivalent record_download() loop. Throws
  /// std::invalid_argument on any invalid id or ordinal discontinuity.
  void ingest_downloads(const events::EventLog& batch);

  /// Updates the list price of a paid app starting at `day`; the average
  /// price (used by the revenue analysis) is tracked per observed day.
  void set_price(AppId app, Cents price, Day day);

  /// Marks ad-library presence for an app (§6.3).
  void set_has_ads(AppId app, bool has_ads);

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::span<const Category> categories() const noexcept { return categories_; }
  [[nodiscard]] std::span<const Developer> developers() const noexcept { return developers_; }
  [[nodiscard]] std::span<const App> apps() const noexcept { return apps_; }
  [[nodiscard]] std::uint32_t user_count() const noexcept { return user_count_; }

  [[nodiscard]] const Category& category(CategoryId id) const { return categories_.at(id.index()); }
  [[nodiscard]] const Developer& developer(DeveloperId id) const {
    return developers_.at(id.index());
  }
  [[nodiscard]] const App& app(AppId id) const { return apps_.at(id.index()); }

  [[nodiscard]] std::uint64_t downloads_of(AppId id) const { return downloads_.at(id.index()); }
  [[nodiscard]] std::uint64_t total_downloads() const noexcept { return total_downloads_; }

  /// Mean of the price observations recorded via set_price/add_app — the
  /// paper uses the average price over the measurement window (§6.1).
  [[nodiscard]] double average_price_dollars(AppId id) const;

  // --- event access (columnar) ---------------------------------------------

  /// The download event log: user/app/day/ordinal columns in record order.
  [[nodiscard]] const events::EventLog& download_log() const noexcept { return download_log_; }
  /// The comment event log: user/app/day/ordinal/rating columns.
  [[nodiscard]] const events::EventLog& comment_log() const noexcept { return comment_log_; }

  /// Builds the CSR per-user indexes on both logs (chronological order per
  /// user). Must be called after the last record_download/record_comment and
  /// before the *_stream() views; synth::generate and load_store do this.
  void build_stream_index(const events::BuildOptions& options = {});
  [[nodiscard]] bool stream_index_built() const noexcept {
    return download_log_.indexed() && comment_log_.indexed();
  }

  /// Zero-copy chronological per-user views (require build_stream_index).
  [[nodiscard]] events::UserStreamView download_stream(UserId user) const {
    return download_log_.stream(user.value);
  }
  [[nodiscard]] events::UserStreamView comment_stream(UserId user) const {
    return comment_log_.stream(user.value);
  }

  [[nodiscard]] std::span<const UpdateEvent> update_events() const noexcept {
    return update_events_;
  }

  /// Deprecated: materializes AoS copies of the event logs — O(events) each
  /// call. Prefer download_log()/comment_log() column views in new code.
  [[nodiscard]] std::vector<DownloadEvent> download_events() const;
  [[nodiscard]] std::vector<CommentEvent> comment_events() const;

  /// Number of apps in each category (index = CategoryId).
  [[nodiscard]] std::vector<std::uint32_t> apps_per_category() const;

  /// Download counts per app (index = AppId), as doubles for the stats layer.
  [[nodiscard]] std::vector<double> download_counts() const;

  /// Download counts restricted to apps with the given pricing.
  [[nodiscard]] std::vector<double> download_counts(Pricing pricing) const;

  /// Download counts sorted descending — the rank–download curve of Fig. 3.
  [[nodiscard]] std::vector<double> downloads_by_rank() const;
  [[nodiscard]] std::vector<double> downloads_by_rank(Pricing pricing) const;

  /// Deprecated: chronological (day, ordinal) per-user comment streams as
  /// materialized per-user vectors — O(events) copies. Prefer
  /// comment_stream() views over the CSR index. Index = UserId.
  [[nodiscard]] std::vector<std::vector<CommentEvent>> comment_streams() const;

  /// Deprecated: materialized per-user download streams. Index = UserId.
  [[nodiscard]] std::vector<std::vector<DownloadEvent>> download_streams() const;

  /// Validates all invariants; throws std::logic_error with a description of
  /// the first violation. Used by tests and after deserialization.
  void check_invariants() const;

 private:
  std::string name_;
  std::vector<Category> categories_;
  std::vector<Developer> developers_;
  std::vector<App> apps_;
  std::uint32_t user_count_ = 0;

  std::vector<std::uint64_t> downloads_;      // per app
  std::uint64_t total_downloads_ = 0;
  std::vector<double> price_sum_dollars_;     // per app, sum of observations
  std::vector<std::uint32_t> price_samples_;  // per app

  events::EventLog download_log_;
  events::EventLog comment_log_;
  std::vector<UpdateEvent> update_events_;
};

}  // namespace appstore::market
