// DurableStore: the unified store lifecycle over the durability spine
// (docs/durability.md) — open → recover → serve → checkpoint → close.
//
// Before this layer, each persistence path was ad hoc: the ALSG segments,
// the crawler database, and the store metadata were saved by separate
// call sites at separate times, so a crash mid-day lost everything since
// the last manual save and a crash mid-save could leave the three stores
// of state mutually inconsistent. DurableStore routes every mutation
// through one write-ahead log (events::Wal) and every day boundary through
// one checkpoint:
//
//   * Mutators (add_app, ingest_downloads, ...) append a sequenced WAL
//     record and fsync it *before* applying the mutation to the in-memory
//     AppStore — memory is always a prefix of the WAL, so recovery is pure
//     redo and bit-identical to the run that never crashed.
//   * checkpoint() writes the ALSG event segments, the entity tables, and
//     every attached component (the crawler database) as artifacts named by
//     the checkpoint sequence, then publishes them with one atomically
//     renamed MANIFEST. The WAL is truncated only after the manifest
//     lands; a crash in between is handled by replay skipping records at
//     or below the manifest's watermark.
//   * open() recovers: newest valid manifest → entities + ALSG segments
//     (adopted wholesale, no re-ingest) + components, then the WAL tail
//     replayed through the same append_batch path ingest uses. A torn WAL
//     tail (crash mid-commit) is dropped; structural corruption elsewhere
//     throws a typed events::binary::LoadError.
//
// Threading: mutators and checkpoint() serialize on one internal mutex
// (single logical writer — the ingest pipeline). Readers are never blocked:
// store() snapshots use the live logs' lock-free frontier protocol even
// while a checkpoint is writing (the checkpoint reads the same snapshots).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "events/io.hpp"
#include "events/live_log.hpp"
#include "events/wal.hpp"
#include "market/store.hpp"
#include "market/types.hpp"

namespace appstore::chaos {
class FaultInjector;
class KillAtOffset;
}  // namespace appstore::chaos

namespace appstore::obs {
class Registry;
class Counter;
}  // namespace appstore::obs

namespace appstore::market {

/// WAL operation vocabulary (the record `kind` values). Payload encodings
/// are private to durable.cpp; the numbers are the on-disk format — append
/// only, never renumber.
enum class WalOp : std::uint32_t {
  kDownloadBatch = 1,
  kCommentBatch = 2,
  kAddCategory = 3,
  kAddDeveloper = 4,
  kAddUsers = 5,
  kAddApp = 6,
  kRecordUpdate = 7,
  kSetPrice = 8,
  kSetHasAds = 9,
};

/// State a higher layer checkpoints inside the same manifest barrier as the
/// store (the crawler registers its CrawlDatabase through this — market
/// cannot depend on the crawler layer, so the coupling is two callbacks).
/// `save` writes into a fresh per-checkpoint directory; `load` restores
/// from it during recovery. Both may throw; a save failure aborts the
/// checkpoint before the manifest is published.
struct CheckpointComponent {
  std::string name;  ///< artifact label; [a-z0-9_]+, unique per store
  std::function<void(const std::filesystem::path& directory)> save;
  std::function<void(const std::filesystem::path& directory)> load;
};

struct DurableOptions {
  /// Shape of the recovered/created AppStore's live logs (capacities).
  events::LiveOptions live;
  /// Bounds for the ALSG artifact loaders (user/app bounds are tightened
  /// further to the recovered entity counts).
  events::LoadLimits limits;
  /// Chaos seams, both applied to WAL writes: `faults` is consulted once
  /// per commit group, `kill` cuts the byte stream at an armed offset.
  chaos::FaultInjector* faults = nullptr;
  chaos::KillAtOffset* kill = nullptr;
  /// fsync WAL commits and checkpoint artifacts. Leave on outside pure-CPU
  /// benches; off voids the crash-consistency contract.
  bool fsync = true;
  /// Optional counters: wal_records_total, wal_commits_total,
  /// checkpoints_total, wal_replayed_records_total.
  obs::Registry* metrics = nullptr;
};

/// What open() found and did.
struct RecoveryReport {
  bool manifest_found = false;
  std::uint64_t checkpoint_sequence = 0;  ///< manifest watermark (0 = none)
  std::uint64_t replayed_records = 0;     ///< WAL records applied
  std::uint64_t skipped_records = 0;      ///< records at/below the watermark
  bool wal_torn_tail = false;             ///< crash cut the last commit group
};

/// What one checkpoint() did.
struct CheckpointStats {
  std::uint64_t sequence = 0;        ///< watermark written to the manifest
  std::uint64_t wal_records = 0;     ///< records the truncation retired
  std::uint64_t event_rows = 0;      ///< download+comment rows in the ALSG artifacts
  double write_seconds = 0.0;        ///< wall time with the writer lock held
};

class DurableStore {
 public:
  /// Binds to `directory` (created if needed). Nothing is read until
  /// open(); `store_name` names a store created fresh when no manifest or
  /// WAL exists yet.
  DurableStore(std::filesystem::path directory, std::string store_name,
               DurableOptions options = {});
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Registers a checkpoint component. Must precede open() (recovery loads
  /// component state). Throws std::logic_error after open().
  void attach_component(CheckpointComponent component);

  /// Recovers the store: newest valid manifest + WAL tail, or a fresh
  /// store when the directory has neither. Throws events::binary::LoadError
  /// on structural corruption that is not explainable as a crash tail.
  RecoveryReport open();

  /// The recovered in-memory store. Valid between open() and close().
  /// Readers may snapshot freely at any time; direct *mutation* of the
  /// returned store bypasses the WAL and voids recovery — mutate through
  /// the DurableStore wrappers below.
  [[nodiscard]] AppStore& store();
  [[nodiscard]] const AppStore& store() const;

  // --- WAL-ahead mutators (mirror the AppStore construction API) ----------

  CategoryId add_category(std::string name);
  DeveloperId add_developer(std::string name);
  UserId add_users(std::uint32_t count);
  AppId add_app(std::string name, DeveloperId developer, CategoryId category,
                Pricing pricing, Cents price, Day released);
  void record_update(AppId app, Day day);
  void set_price(AppId app, Cents price, Day day);
  void set_has_ads(AppId app, bool has_ads);
  /// Group-committed: the whole batch is one WAL record, one fsync, one
  /// atomically published block.
  void ingest_downloads(const events::EventLog& batch,
                        const events::IngestOptions& options = {});
  void ingest_comments(const events::EventLog& batch,
                       const events::IngestOptions& options = {});

  /// Day-boundary checkpoint: writes all artifacts, publishes the manifest
  /// atomically, retires the WAL, garbage-collects older artifacts.
  /// Concurrent snapshot readers are never blocked; concurrent mutators
  /// wait. Throws on I/O failure or an injected fault — the previous
  /// manifest and WAL then still fully describe the store.
  CheckpointStats checkpoint();

  /// Flushes and closes the WAL. The on-disk state (manifest + WAL)
  /// remains recoverable; further mutators throw.
  void close();

  /// Sequence of the last durable (fsynced) WAL record.
  [[nodiscard]] std::uint64_t durable_sequence() const;
  /// Watermark of the newest published checkpoint.
  [[nodiscard]] std::uint64_t checkpoint_sequence() const noexcept {
    return checkpoint_sequence_;
  }
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  struct Manifest;

  void require_open() const;
  /// Appends one record, fsyncs the group, then applies — the WAL-ahead
  /// discipline every mutator funnels through.
  void log_and_apply(WalOp op, std::string payload);
  /// Applies a decoded WAL operation to the in-memory store (the shared
  /// path of live mutation and recovery replay).
  void apply(WalOp op, std::string_view payload, const events::IngestOptions& options);

  [[nodiscard]] std::filesystem::path wal_path() const;
  [[nodiscard]] std::filesystem::path manifest_path() const;

  void write_manifest(const Manifest& manifest);
  [[nodiscard]] Manifest read_manifest() const;
  void restore_from_manifest(const Manifest& manifest);
  /// Removes artifacts whose embedded sequence differs from `keep` (crash
  /// debris from interrupted checkpoints, or retired checkpoints).
  void collect_garbage(std::uint64_t keep);

  std::filesystem::path directory_;
  std::string store_name_;
  DurableOptions options_;
  std::vector<CheckpointComponent> components_;

  mutable std::mutex writer_mutex_;  ///< serializes mutators and checkpoint()
  std::unique_ptr<AppStore> store_;
  std::unique_ptr<events::WalWriter> wal_;
  std::uint64_t checkpoint_sequence_ = 0;
  bool opened_ = false;

  obs::Counter* wal_records_ = nullptr;
  obs::Counter* wal_commits_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* replayed_records_ = nullptr;
};

}  // namespace appstore::market
