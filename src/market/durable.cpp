#include "market/durable.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chaos/fault.hpp"
#include "chaos/file_faults.hpp"
#include "events/binary.hpp"
#include "events/live_io.hpp"
#include "market/serialize.hpp"
#include "obs/registry.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace appstore::market {

namespace {

using events::binary::LoadError;
using events::binary::LoadErrorKind;

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kWalName = "wal.awal";
constexpr std::string_view kManifestMagicLine = "AMAN 1";

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

/// Cursor over a WAL payload; a short read means the payload bytes are
/// corrupt (their record checksum already passed, so this is not a tear).
struct PayloadCursor {
  std::string_view rest;

  template <typename T>
  [[nodiscard]] T take(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rest.size() < sizeof(T)) {
      throw LoadError(LoadErrorKind::kTruncated,
                      std::string("wal apply: payload short of ") + what);
    }
    T value{};
    std::memcpy(&value, rest.data(), sizeof value);
    rest.remove_prefix(sizeof value);
    return value;
  }

  [[nodiscard]] std::string take_string(std::size_t size, const char* what) {
    if (rest.size() < size) {
      throw LoadError(LoadErrorKind::kTruncated,
                      std::string("wal apply: payload short of ") + what);
    }
    std::string value(rest.substr(0, size));
    rest.remove_prefix(size);
    return value;
  }

  void expect_done(const char* what) const {
    if (!rest.empty()) {
      throw LoadError(LoadErrorKind::kLengthMismatch,
                      std::string("wal apply: trailing payload bytes in ") + what);
    }
  }
};

/// Replicates AppStore's backing-file shaping (".downloads"/".comments"
/// suffixes) so logs built by load_segmented match what the store would
/// have created itself.
[[nodiscard]] events::LiveOptions shaped(const events::LiveOptions& live, const char* suffix) {
  events::LiveOptions options = live;
  if (!options.backing_file.empty()) options.backing_file += suffix;
  return options;
}

[[nodiscard]] std::uint64_t file_bytes(const std::filesystem::path& path) {
  std::error_code error;
  const std::uintmax_t size = std::filesystem::file_size(path, error);
  if (error) {
    throw LoadError(LoadErrorKind::kOpen,
                    "manifest artifact missing: " + path.string() + ": " + error.message());
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace

/// Parsed MANIFEST content. An artifact line records the exact byte size
/// save wrote, so recovery can reject a tampered or mis-copied file before
/// its loader runs; component/entity entries are directories and are
/// validated by their own loaders.
struct DurableStore::Manifest {
  std::uint64_t sequence = 0;
  std::string store_name;
  std::string entities_dir;
  std::string downloads_file;
  std::uint64_t downloads_bytes = 0;
  std::string comments_file;
  std::uint64_t comments_bytes = 0;
  std::vector<std::pair<std::string, std::string>> components;  // name -> dir
};

DurableStore::DurableStore(std::filesystem::path directory, std::string store_name,
                           DurableOptions options)
    : directory_(std::move(directory)),
      store_name_(std::move(store_name)),
      options_(std::move(options)) {
  std::filesystem::create_directories(directory_);
}

DurableStore::~DurableStore() = default;

void DurableStore::attach_component(CheckpointComponent component) {
  if (opened_) throw std::logic_error("DurableStore: attach_component after open()");
  if (component.name.empty() || !component.save || !component.load) {
    throw std::invalid_argument("DurableStore: incomplete checkpoint component");
  }
  for (const auto& existing : components_) {
    if (existing.name == component.name) {
      throw std::invalid_argument("DurableStore: duplicate component " + component.name);
    }
  }
  components_.push_back(std::move(component));
}

std::filesystem::path DurableStore::wal_path() const { return directory_ / kWalName; }
std::filesystem::path DurableStore::manifest_path() const {
  return directory_ / kManifestName;
}

AppStore& DurableStore::store() {
  if (store_ == nullptr) throw std::logic_error("DurableStore: store() before open()");
  return *store_;
}

const AppStore& DurableStore::store() const {
  if (store_ == nullptr) throw std::logic_error("DurableStore: store() before open()");
  return *store_;
}

void DurableStore::require_open() const {
  if (!opened_) throw std::logic_error("DurableStore: not open");
  if (wal_ == nullptr) throw std::logic_error("DurableStore: closed");
}

RecoveryReport DurableStore::open() {
  const std::lock_guard lock(writer_mutex_);
  if (opened_) throw std::logic_error("DurableStore: double open()");
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    registry.describe("wal_records_total", "WAL records appended");
    registry.describe("wal_commits_total", "WAL commit groups fsynced");
    registry.describe("checkpoints_total", "Checkpoints published");
    registry.describe("wal_replayed_records_total", "WAL records replayed at recovery");
    wal_records_ = &registry.counter("wal_records_total");
    wal_commits_ = &registry.counter("wal_commits_total");
    checkpoints_ = &registry.counter("checkpoints_total");
    replayed_records_ = &registry.counter("wal_replayed_records_total");
  }

  RecoveryReport report;
  if (std::filesystem::exists(manifest_path())) {
    const Manifest manifest = read_manifest();
    restore_from_manifest(manifest);
    checkpoint_sequence_ = manifest.sequence;
    report.manifest_found = true;
    report.checkpoint_sequence = manifest.sequence;
  } else {
    store_ = std::make_unique<AppStore>(store_name_, options_.live);
  }

  events::WalOptions wal_options{options_.faults, options_.kill, options_.fsync};
  if (std::filesystem::exists(wal_path())) {
    const events::WalReplay replay = events::replay_wal(wal_path());
    report.wal_torn_tail = replay.torn_tail;
    if (replay.valid_bytes == 0) {
      // The crash tore the WAL *header* (mid-reset, after the manifest
      // landed): the file carries no records, so the manifest is the whole
      // truth — start a fresh log at its watermark.
      wal_ = std::make_unique<events::WalWriter>(
          events::WalWriter::create(wal_path(), checkpoint_sequence_, wal_options));
    } else {
      if (replay.base_sequence > checkpoint_sequence_) {
        // The WAL claims a checkpoint newer than the manifest — records
        // between the manifest and the WAL base are gone. Refuse to serve
        // a silently holey store.
        throw LoadError(LoadErrorKind::kBadSequence,
                        util::format("recover: wal base {} > manifest watermark {} in {}",
                                     replay.base_sequence, checkpoint_sequence_,
                                     directory_.string()));
      }
      for (const events::WalRecord& record : replay.records) {
        if (record.sequence <= checkpoint_sequence_) {
          ++report.skipped_records;
          continue;
        }
        apply(static_cast<WalOp>(record.kind), record.payload, {});
        ++report.replayed_records;
      }
      wal_ = std::make_unique<events::WalWriter>(
          events::WalWriter::resume(wal_path(), replay, wal_options));
    }
  } else {
    wal_ = std::make_unique<events::WalWriter>(
        events::WalWriter::create(wal_path(), checkpoint_sequence_, wal_options));
  }

  if (replayed_records_ != nullptr) replayed_records_->inc(report.replayed_records);
  collect_garbage(checkpoint_sequence_);
  opened_ = true;
  return report;
}

// --- WAL-ahead mutators -----------------------------------------------------

void DurableStore::log_and_apply(WalOp op, std::string payload) {
  wal_->append(static_cast<std::uint32_t>(op), payload);
  wal_->commit();  // durable before any reader can observe the mutation
  if (wal_records_ != nullptr) wal_records_->inc();
  if (wal_commits_ != nullptr) wal_commits_->inc();
  apply(op, payload, {});
}

CategoryId DurableStore::add_category(std::string name) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  const CategoryId id{static_cast<std::uint32_t>(store_->categories().size())};
  log_and_apply(WalOp::kAddCategory, std::move(name));
  return id;
}

DeveloperId DurableStore::add_developer(std::string name) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  const DeveloperId id{static_cast<std::uint32_t>(store_->developers().size())};
  log_and_apply(WalOp::kAddDeveloper, std::move(name));
  return id;
}

UserId DurableStore::add_users(std::uint32_t count) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  // Validate before the WAL write: a record that cannot apply must never
  // become durable, or replay would fault on it.
  if (static_cast<std::uint64_t>(store_->user_count()) + count >
      store_->download_live().max_users()) {
    throw std::invalid_argument("DurableStore: add_users exceeds max_users");
  }
  const UserId first{store_->user_count()};
  std::string payload;
  append_pod(payload, count);
  log_and_apply(WalOp::kAddUsers, std::move(payload));
  return first;
}

AppId DurableStore::add_app(std::string name, DeveloperId developer, CategoryId category,
                            Pricing pricing, Cents price, Day released) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  if (!developer.valid() || developer.index() >= store_->developers().size()) {
    throw std::invalid_argument("DurableStore: add_app invalid developer");
  }
  if (!category.valid() || category.index() >= store_->categories().size()) {
    throw std::invalid_argument("DurableStore: add_app invalid category");
  }
  if (pricing == Pricing::kFree && price != 0) {
    throw std::invalid_argument("DurableStore: free app with nonzero price");
  }
  const AppId id{static_cast<std::uint32_t>(store_->apps().size())};
  std::string payload;
  append_pod(payload, static_cast<std::uint32_t>(name.size()));
  payload += name;
  append_pod(payload, developer.value);
  append_pod(payload, category.value);
  append_pod(payload, static_cast<std::uint8_t>(pricing == Pricing::kPaid ? 1 : 0));
  append_pod(payload, price);
  append_pod(payload, released);
  log_and_apply(WalOp::kAddApp, std::move(payload));
  return id;
}

void DurableStore::record_update(AppId app, Day day) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  if (app.index() >= store_->apps().size()) {
    throw std::invalid_argument("DurableStore: record_update invalid app");
  }
  std::string payload;
  append_pod(payload, app.value);
  append_pod(payload, day);
  log_and_apply(WalOp::kRecordUpdate, std::move(payload));
}

void DurableStore::set_price(AppId app, Cents price, Day day) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  if (app.index() >= store_->apps().size() ||
      store_->app(app).pricing != Pricing::kPaid) {
    throw std::invalid_argument("DurableStore: set_price on invalid or free app");
  }
  std::string payload;
  append_pod(payload, app.value);
  append_pod(payload, price);
  append_pod(payload, day);
  log_and_apply(WalOp::kSetPrice, std::move(payload));
}

void DurableStore::set_has_ads(AppId app, bool has_ads) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  if (app.index() >= store_->apps().size()) {
    throw std::invalid_argument("DurableStore: set_has_ads invalid app");
  }
  std::string payload;
  append_pod(payload, app.value);
  append_pod(payload, static_cast<std::uint8_t>(has_ads ? 1 : 0));
  log_and_apply(WalOp::kSetHasAds, std::move(payload));
}

namespace {

void validate_batch_ids(const events::EventLog& batch, std::uint32_t user_count,
                        std::size_t app_count, const char* what) {
  const auto users = batch.user();
  const auto apps = batch.app();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (users[k] >= user_count || apps[k] >= app_count) {
      throw std::invalid_argument(std::string("DurableStore: invalid id in ") + what);
    }
  }
}

}  // namespace

void DurableStore::ingest_downloads(const events::EventLog& batch,
                                    const events::IngestOptions& options) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  validate_batch_ids(batch, store_->user_count(), store_->apps().size(), "download batch");
  wal_->append(static_cast<std::uint32_t>(WalOp::kDownloadBatch),
               events::encode_event_batch(batch));
  wal_->commit();
  if (wal_records_ != nullptr) wal_records_->inc();
  if (wal_commits_ != nullptr) wal_commits_->inc();
  store_->ingest_downloads(batch, options);
}

void DurableStore::ingest_comments(const events::EventLog& batch,
                                   const events::IngestOptions& options) {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  validate_batch_ids(batch, store_->user_count(), store_->apps().size(), "comment batch");
  wal_->append(static_cast<std::uint32_t>(WalOp::kCommentBatch),
               events::encode_event_batch(batch));
  wal_->commit();
  if (wal_records_ != nullptr) wal_records_->inc();
  if (wal_commits_ != nullptr) wal_commits_->inc();
  store_->ingest_comments(batch, options);
}

void DurableStore::apply(WalOp op, std::string_view payload,
                         const events::IngestOptions& options) {
  switch (op) {
    case WalOp::kDownloadBatch:
      store_->ingest_downloads(events::decode_event_batch(payload), options);
      return;
    case WalOp::kCommentBatch:
      store_->ingest_comments(events::decode_event_batch(payload), options);
      return;
    case WalOp::kAddCategory:
      (void)store_->add_category(std::string(payload));
      return;
    case WalOp::kAddDeveloper:
      (void)store_->add_developer(std::string(payload));
      return;
    case WalOp::kAddUsers: {
      PayloadCursor cursor{payload};
      const auto count = cursor.take<std::uint32_t>("user count");
      cursor.expect_done("add-users");
      (void)store_->add_users(count);
      return;
    }
    case WalOp::kAddApp: {
      PayloadCursor cursor{payload};
      const auto name_size = cursor.take<std::uint32_t>("app name size");
      std::string name = cursor.take_string(name_size, "app name");
      const auto developer = cursor.take<std::uint32_t>("developer");
      const auto category = cursor.take<std::uint32_t>("category");
      const auto paid = cursor.take<std::uint8_t>("pricing");
      const auto price = cursor.take<Cents>("price");
      const auto released = cursor.take<Day>("released day");
      cursor.expect_done("add-app");
      (void)store_->add_app(std::move(name), DeveloperId{developer}, CategoryId{category},
                            paid != 0 ? Pricing::kPaid : Pricing::kFree, price, released);
      return;
    }
    case WalOp::kRecordUpdate: {
      PayloadCursor cursor{payload};
      const auto app = cursor.take<std::uint32_t>("app");
      const auto day = cursor.take<Day>("day");
      cursor.expect_done("record-update");
      store_->record_update(AppId{app}, day);
      return;
    }
    case WalOp::kSetPrice: {
      PayloadCursor cursor{payload};
      const auto app = cursor.take<std::uint32_t>("app");
      const auto price = cursor.take<Cents>("price");
      const auto day = cursor.take<Day>("day");
      cursor.expect_done("set-price");
      store_->set_price(AppId{app}, price, day);
      return;
    }
    case WalOp::kSetHasAds: {
      PayloadCursor cursor{payload};
      const auto app = cursor.take<std::uint32_t>("app");
      const auto has_ads = cursor.take<std::uint8_t>("has-ads flag");
      cursor.expect_done("set-has-ads");
      store_->set_has_ads(AppId{app}, has_ads != 0);
      return;
    }
  }
  throw LoadError(LoadErrorKind::kBadFlags,
                  util::format("wal apply: unknown operation {}",
                               static_cast<std::uint32_t>(op)));
}

// --- checkpoint --------------------------------------------------------------

CheckpointStats DurableStore::checkpoint() {
  const std::lock_guard lock(writer_mutex_);
  require_open();
  const auto start = std::chrono::steady_clock::now();

  const std::uint64_t sequence = wal_->committed_sequence();
  const std::string tag = std::to_string(sequence);
  const auto entities_dir = directory_ / ("entities-" + tag);
  const auto downloads_file = directory_ / ("downloads-" + tag + ".alsg");
  const auto comments_file = directory_ / ("comments-" + tag + ".alsg");

  save_entities(*store_, entities_dir);
  events::IoOptions io;
  io.faults = options_.faults;
  const events::FrontierSnapshot downloads = store_->download_log();
  const events::FrontierSnapshot comments = store_->comment_log();
  events::save_segmented(downloads, downloads_file, io);
  events::save_segmented(comments, comments_file, io);
  if (options_.fsync) {
    util::fsync_file(downloads_file);
    util::fsync_file(comments_file);
  }

  Manifest manifest;
  manifest.sequence = sequence;
  manifest.store_name = store_->name();
  manifest.entities_dir = entities_dir.filename().string();
  manifest.downloads_file = downloads_file.filename().string();
  manifest.downloads_bytes = file_bytes(downloads_file);
  manifest.comments_file = comments_file.filename().string();
  manifest.comments_bytes = file_bytes(comments_file);
  for (const auto& component : components_) {
    const auto component_dir = directory_ / (component.name + "-" + tag);
    component.save(component_dir);
    manifest.components.emplace_back(component.name, component_dir.filename().string());
  }

  write_manifest(manifest);  // the commit point: atomic rename + dir fsync
  checkpoint_sequence_ = sequence;

  // Only now is the WAL prefix redundant — retire it. A crash in between
  // is covered by replay skipping records at or below the watermark.
  CheckpointStats stats;
  stats.sequence = sequence;
  stats.wal_records = sequence - wal_->base_sequence();
  stats.event_rows = downloads.size() + comments.size();
  events::WalOptions wal_options{options_.faults, options_.kill, options_.fsync};
  wal_->close();
  wal_ = std::make_unique<events::WalWriter>(
      events::WalWriter::create(wal_path(), sequence, wal_options));
  collect_garbage(sequence);

  if (checkpoints_ != nullptr) checkpoints_->inc();
  stats.write_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

void DurableStore::close() {
  const std::lock_guard lock(writer_mutex_);
  if (wal_ != nullptr) {
    wal_->commit();
    wal_->close();
    wal_.reset();
  }
}

std::uint64_t DurableStore::durable_sequence() const {
  const std::lock_guard lock(writer_mutex_);
  if (wal_ != nullptr) return wal_->committed_sequence();
  return checkpoint_sequence_;
}

// --- manifest ----------------------------------------------------------------

void DurableStore::write_manifest(const Manifest& manifest) {
  util::AtomicFile staged(manifest_path());
  {
    std::ofstream out(staged.temp_path(), std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + staged.temp_path().string());
    }
    out << kManifestMagicLine << '\n';
    out << "sequence " << manifest.sequence << '\n';
    out << "store " << manifest.store_name << '\n';
    out << "entities " << manifest.entities_dir << '\n';
    out << "downloads " << manifest.downloads_bytes << ' ' << manifest.downloads_file << '\n';
    out << "comments " << manifest.comments_bytes << ' ' << manifest.comments_file << '\n';
    for (const auto& [name, dir] : manifest.components) {
      out << "component " << name << ' ' << dir << '\n';
    }
    out << "end\n";
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: manifest write failed in " +
                               directory_.string());
    }
  }
  // Bytes first, then the name, then the directory entry — the rename only
  // orders the *name* (see util::fsync_file).
  if (options_.fsync) util::fsync_file(staged.temp_path());
  staged.commit();
  if (options_.fsync) util::fsync_directory(directory_);
}

DurableStore::Manifest DurableStore::read_manifest() const {
  std::ifstream in(manifest_path());
  if (!in) {
    throw LoadError(LoadErrorKind::kOpen,
                    "recover: cannot open " + manifest_path().string());
  }
  const auto bad = [this](const std::string& why) {
    return LoadError(LoadErrorKind::kBadMagic,
                     "recover: malformed manifest in " + directory_.string() + ": " + why);
  };
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagicLine) throw bad("bad magic line");

  Manifest manifest;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const auto space = line.find(' ');
    if (space == std::string::npos) throw bad("fieldless line '" + line + "'");
    const std::string key = line.substr(0, space);
    const std::string rest = line.substr(space + 1);
    if (key == "sequence") {
      if (!util::parse_u64(rest, manifest.sequence)) throw bad("bad sequence");
    } else if (key == "store") {
      manifest.store_name = rest;
    } else if (key == "entities") {
      manifest.entities_dir = rest;
    } else if (key == "downloads" || key == "comments") {
      const auto split = rest.find(' ');
      if (split == std::string::npos) throw bad("bad " + key + " line");
      std::uint64_t bytes = 0;
      if (!util::parse_u64(rest.substr(0, split), bytes)) throw bad("bad " + key + " size");
      if (key == "downloads") {
        manifest.downloads_bytes = bytes;
        manifest.downloads_file = rest.substr(split + 1);
      } else {
        manifest.comments_bytes = bytes;
        manifest.comments_file = rest.substr(split + 1);
      }
    } else if (key == "component") {
      const auto split = rest.find(' ');
      if (split == std::string::npos) throw bad("bad component line");
      manifest.components.emplace_back(rest.substr(0, split), rest.substr(split + 1));
    } else {
      throw bad("unknown key '" + key + "'");
    }
  }
  // AtomicFile makes a *torn* manifest impossible under a process kill, so
  // a missing trailer is corruption, not a crash artifact.
  if (!saw_end) throw bad("missing end trailer");
  if (manifest.entities_dir.empty() || manifest.downloads_file.empty() ||
      manifest.comments_file.empty()) {
    throw bad("missing artifact entries");
  }
  return manifest;
}

void DurableStore::restore_from_manifest(const Manifest& manifest) {
  const auto downloads_path = directory_ / manifest.downloads_file;
  const auto comments_path = directory_ / manifest.comments_file;
  // Size check before the loaders: the manifest recorded what save wrote,
  // so any drift is detected even where a format would tolerate it.
  if (file_bytes(downloads_path) != manifest.downloads_bytes ||
      file_bytes(comments_path) != manifest.comments_bytes) {
    throw LoadError(LoadErrorKind::kLengthMismatch,
                    "recover: artifact size drifted from manifest in " +
                        directory_.string());
  }

  store_ = load_entities(directory_ / manifest.entities_dir, options_.live);

  // Tighten the load bounds to the recovered entity universe: the segments
  // were written by this store, so anything outside it is corruption.
  events::LoadLimits limits = options_.limits;
  limits.user_bound = std::min<std::uint64_t>(limits.user_bound, store_->user_count());
  limits.app_bound = std::min<std::uint64_t>(limits.app_bound, store_->apps().size());
  auto downloads = events::load_segmented(downloads_path, shaped(options_.live, ".downloads"),
                                          limits);
  auto comments =
      events::load_segmented(comments_path, shaped(options_.live, ".comments"), limits);
  store_->adopt_event_logs(std::move(downloads), std::move(comments));

  for (const auto& [name, dir] : manifest.components) {
    bool found = false;
    for (const auto& component : components_) {
      if (component.name == name) {
        component.load(directory_ / dir);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("recover: manifest component '" + name +
                               "' has no attached handler in " + directory_.string());
    }
  }
}

void DurableStore::collect_garbage(std::uint64_t keep) {
  // Artifact names embed their checkpoint sequence ("downloads-42.alsg",
  // "entities-42", "<component>-42"); anything with a different sequence is
  // either retired or debris from an interrupted checkpoint. Unknown names
  // are left alone.
  const std::string keep_tag = std::to_string(keep);
  std::vector<std::filesystem::path> doomed;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name == kWalName || name == kManifestName) continue;
    if (name.ends_with(".tmp")) {
      // AtomicFile staging debris from a crashed writer — never a
      // committed name, always safe to drop.
      doomed.push_back(entry.path());
      continue;
    }
    std::string stem = name;
    if (stem.size() > 5 && stem.ends_with(".alsg")) stem.resize(stem.size() - 5);
    const auto dash = stem.rfind('-');
    if (dash == std::string::npos) continue;
    const std::string tag = stem.substr(dash + 1);
    std::uint64_t sequence = 0;
    if (tag.empty() || !util::parse_u64(tag, sequence)) continue;
    if (tag != keep_tag) doomed.push_back(entry.path());
  }
  for (const auto& path : doomed) {
    std::error_code ignored;
    std::filesystem::remove_all(path, ignored);
  }
}

}  // namespace appstore::market
