// Strongly-typed identifiers and time units for the marketplace domain.
//
// IDs are dense indices (0-based) into the owning AppStore's tables; the
// wrapper types exist so an AppId cannot be passed where a UserId is
// expected. `Day` counts days since the start of the observation window,
// mirroring the paper's daily crawl granularity.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace appstore::market {

namespace detail {

/// CRTP-free tagged index. Tag distinguishes otherwise-identical types.
template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  explicit constexpr Id(std::uint32_t v) noexcept : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }

  friend constexpr auto operator<=>(Id, Id) = default;
};

}  // namespace detail

struct AppTag {};
struct UserTag {};
struct DeveloperTag {};
struct CategoryTag {};

using AppId = detail::Id<AppTag>;
using UserId = detail::Id<UserTag>;
using DeveloperId = detail::Id<DeveloperTag>;
using CategoryId = detail::Id<CategoryTag>;

/// Days since the first observed day (the paper's crawl step is one day).
using Day = std::int32_t;

/// Cents avoid accumulating floating-point error in revenue sums; the paper
/// reports dollars, so conversion helpers are provided.
using Cents = std::int64_t;

[[nodiscard]] constexpr double cents_to_dollars(Cents cents) noexcept {
  return static_cast<double>(cents) / 100.0;
}

[[nodiscard]] constexpr Cents dollars_to_cents(double dollars) noexcept {
  return static_cast<Cents>(dollars * 100.0 + (dollars >= 0 ? 0.5 : -0.5));
}

}  // namespace appstore::market

template <typename Tag>
struct std::hash<appstore::market::detail::Id<Tag>> {
  [[nodiscard]] std::size_t operator()(appstore::market::detail::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
