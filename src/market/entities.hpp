// Domain entities: categories, developers, apps, users.
//
// These are plain aggregates (Core Guidelines C.1/C.7): all invariants that
// span entities (ID validity, download counts vs events) are owned by
// market::AppStore.
#pragma once

#include <string>
#include <vector>

#include "market/types.hpp"

namespace appstore::market {

/// Thematic app category ("games", "e-books", ...). Clusters in the
/// APP-CLUSTERING model are identified with categories (§4, point A).
struct Category {
  CategoryId id;
  std::string name;
};

struct Developer {
  DeveloperId id;
  std::string name;
};

/// Pricing model of an app. The paper's stores offer free and paid apps;
/// SlideMe is the only monitored store with paid ones.
enum class Pricing : std::uint8_t { kFree, kPaid };

struct App {
  AppId id;
  std::string name;
  DeveloperId developer;
  CategoryId category;
  Pricing pricing = Pricing::kFree;
  /// Current list price; 0 for free apps. Prices may change over time — the
  /// paper uses the average observed price, which AppStore tracks.
  Cents price = 0;
  /// Day the app first appeared in the store (0 for the initial snapshot).
  Day released = 0;
  /// Days on which the developer shipped an update (Fig. 4).
  std::vector<Day> update_days;
  /// Whether the APK embeds one of the top-20 ad libraries (§6.3, 67.7% of
  /// free apps). Substitutes the paper's Androguard scan.
  bool has_ads = false;
};

/// Users are anonymous in the dataset; we only track their download/comment
/// streams, never any identity — matching the paper's privacy posture.
struct User {
  UserId id;
};

}  // namespace appstore::market
