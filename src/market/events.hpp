// Timestamped event streams.
//
// Ordering within a day follows the order of generation/crawl; `ordinal`
// breaks ties so that per-user streams have a total chronological order,
// which the affinity metric (§4.2) requires.
#pragma once

#include <cstdint>

#include "market/types.hpp"

namespace appstore::market {

struct DownloadEvent {
  UserId user;
  AppId app;
  Day day = 0;
  std::uint32_t ordinal = 0;  ///< within-day sequence number
};

/// A user comment with a rating — the paper treats a rated comment as strong
/// evidence of a download and reconstructs download patterns from these.
struct CommentEvent {
  UserId user;
  AppId app;
  Day day = 0;
  std::uint32_t ordinal = 0;
  /// 1..5 stars; comments without ratings are excluded during analysis.
  std::uint8_t rating = 0;
};

struct UpdateEvent {
  AppId app;
  Day day = 0;
  /// Monotonically increasing version ordinal (1 = first update).
  std::uint32_t version = 0;
};

/// Chronological comparison (day, then ordinal).
[[nodiscard]] constexpr bool chronological(const DownloadEvent& a,
                                           const DownloadEvent& b) noexcept {
  return a.day != b.day ? a.day < b.day : a.ordinal < b.ordinal;
}

[[nodiscard]] constexpr bool chronological(const CommentEvent& a,
                                           const CommentEvent& b) noexcept {
  return a.day != b.day ? a.day < b.day : a.ordinal < b.ordinal;
}

}  // namespace appstore::market
