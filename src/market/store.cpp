#include "market/store.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "util/format.hpp"

namespace appstore::market {

CategoryId AppStore::add_category(std::string name) {
  const CategoryId id{static_cast<std::uint32_t>(categories_.size())};
  categories_.push_back(Category{id, std::move(name)});
  return id;
}

DeveloperId AppStore::add_developer(std::string name) {
  const DeveloperId id{static_cast<std::uint32_t>(developers_.size())};
  developers_.push_back(Developer{id, std::move(name)});
  return id;
}

UserId AppStore::add_user() { return add_users(1); }

UserId AppStore::add_users(std::uint32_t count) {
  const UserId first{user_count_};
  user_count_ += count;
  return first;
}

AppId AppStore::add_app(std::string name, DeveloperId developer, CategoryId category,
                        Pricing pricing, Cents price, Day released) {
  if (!developer.valid() || developer.index() >= developers_.size()) {
    throw std::invalid_argument("add_app: invalid developer");
  }
  if (!category.valid() || category.index() >= categories_.size()) {
    throw std::invalid_argument("add_app: invalid category");
  }
  if (pricing == Pricing::kFree && price != 0) {
    throw std::invalid_argument("add_app: free app with nonzero price");
  }
  const AppId id{static_cast<std::uint32_t>(apps_.size())};
  apps_.push_back(App{.id = id,
                      .name = std::move(name),
                      .developer = developer,
                      .category = category,
                      .pricing = pricing,
                      .price = price,
                      .released = released,
                      .update_days = {},
                      .has_ads = false});
  downloads_.push_back(0);
  price_sum_dollars_.push_back(pricing == Pricing::kPaid ? cents_to_dollars(price) : 0.0);
  price_samples_.push_back(pricing == Pricing::kPaid ? 1u : 0u);
  return id;
}

void AppStore::record_update(AppId app, Day day) {
  auto& entry = apps_.at(app.index());
  entry.update_days.push_back(day);
  update_events_.push_back(
      UpdateEvent{app, day, static_cast<std::uint32_t>(entry.update_days.size())});
}

void AppStore::record_download(UserId user, AppId app, Day day) {
  if (user.index() >= user_count_) throw std::invalid_argument("record_download: invalid user");
  ++downloads_.at(app.index());
  ++total_downloads_;
  download_log_.append(user.value, app.value, day,
                       static_cast<std::uint32_t>(download_log_.size()));
}

void AppStore::record_comment(UserId user, AppId app, Day day, std::uint8_t rating) {
  if (user.index() >= user_count_) throw std::invalid_argument("record_comment: invalid user");
  if (app.index() >= apps_.size()) throw std::invalid_argument("record_comment: invalid app");
  comment_log_.append(user.value, app.value, day,
                      static_cast<std::uint32_t>(comment_log_.size()), rating);
}

void AppStore::ingest_downloads(const events::EventLog& batch) {
  if (batch.columns() != download_log_.columns()) {
    throw std::invalid_argument("ingest_downloads: batch column mask mismatch");
  }
  const auto base = static_cast<std::uint32_t>(download_log_.size());
  const auto users = batch.user();
  const auto apps = batch.app();
  const auto ordinals = batch.ordinal();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (users[k] >= user_count_) {
      throw std::invalid_argument("ingest_downloads: invalid user");
    }
    if (apps[k] >= apps_.size()) {
      throw std::invalid_argument("ingest_downloads: invalid app");
    }
    if (ordinals[k] != base + k) {
      throw std::invalid_argument(util::format(
          "ingest_downloads: ordinal discontinuity at row {} ({} != {})", k, ordinals[k],
          base + k));
    }
  }
  for (const auto app : apps) ++downloads_[app];
  total_downloads_ += batch.size();
  download_log_.append(batch);
}

void AppStore::set_price(AppId app, Cents price, Day /*day*/) {
  auto& entry = apps_.at(app.index());
  if (entry.pricing != Pricing::kPaid) {
    throw std::invalid_argument("set_price: app is not paid");
  }
  entry.price = price;
  price_sum_dollars_.at(app.index()) += cents_to_dollars(price);
  ++price_samples_.at(app.index());
}

void AppStore::set_has_ads(AppId app, bool has_ads) {
  apps_.at(app.index()).has_ads = has_ads;
}

double AppStore::average_price_dollars(AppId id) const {
  const std::uint32_t samples = price_samples_.at(id.index());
  if (samples == 0) return 0.0;
  return price_sum_dollars_.at(id.index()) / static_cast<double>(samples);
}

void AppStore::build_stream_index(const events::BuildOptions& options) {
  download_log_.build_index(user_count_, options);
  comment_log_.build_index(user_count_, options);
}

std::vector<DownloadEvent> AppStore::download_events() const {
  std::vector<DownloadEvent> out;
  out.reserve(download_log_.size());
  for (const auto row : download_log_) {
    out.push_back(DownloadEvent{UserId{row.user}, AppId{row.app}, row.day, row.ordinal});
  }
  return out;
}

std::vector<CommentEvent> AppStore::comment_events() const {
  std::vector<CommentEvent> out;
  out.reserve(comment_log_.size());
  for (const auto row : comment_log_) {
    out.push_back(
        CommentEvent{UserId{row.user}, AppId{row.app}, row.day, row.ordinal, row.rating});
  }
  return out;
}

std::vector<std::uint32_t> AppStore::apps_per_category() const {
  std::vector<std::uint32_t> counts(categories_.size(), 0);
  for (const auto& app : apps_) ++counts[app.category.index()];
  return counts;
}

std::vector<double> AppStore::download_counts() const {
  std::vector<double> counts;
  counts.reserve(downloads_.size());
  for (const auto d : downloads_) counts.push_back(static_cast<double>(d));
  return counts;
}

std::vector<double> AppStore::download_counts(Pricing pricing) const {
  std::vector<double> counts;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].pricing == pricing) counts.push_back(static_cast<double>(downloads_[i]));
  }
  return counts;
}

std::vector<double> AppStore::downloads_by_rank() const {
  std::vector<double> counts = download_counts();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

std::vector<double> AppStore::downloads_by_rank(Pricing pricing) const {
  std::vector<double> counts = download_counts(pricing);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

std::vector<std::vector<CommentEvent>> AppStore::comment_streams() const {
  std::vector<std::vector<CommentEvent>> streams(user_count_);
  for (const auto row : comment_log_) {
    streams[row.user].push_back(
        CommentEvent{UserId{row.user}, AppId{row.app}, row.day, row.ordinal, row.rating});
  }
  for (auto& stream : streams) {
    std::sort(stream.begin(), stream.end(),
              [](const CommentEvent& a, const CommentEvent& b) { return chronological(a, b); });
  }
  return streams;
}

std::vector<std::vector<DownloadEvent>> AppStore::download_streams() const {
  std::vector<std::vector<DownloadEvent>> streams(user_count_);
  for (const auto row : download_log_) {
    streams[row.user].push_back(DownloadEvent{UserId{row.user}, AppId{row.app}, row.day,
                                              row.ordinal});
  }
  for (auto& stream : streams) {
    std::sort(stream.begin(), stream.end(),
              [](const DownloadEvent& a, const DownloadEvent& b) { return chronological(a, b); });
  }
  return streams;
}

void AppStore::check_invariants() const {
  if (downloads_.size() != apps_.size()) {
    throw std::logic_error("store invariant: download counter size mismatch");
  }
  std::uint64_t recomputed_total = 0;
  std::vector<std::uint64_t> recomputed(apps_.size(), 0);
  const auto dl_users = download_log_.user();
  const auto dl_apps = download_log_.app();
  for (std::size_t i = 0; i < download_log_.size(); ++i) {
    if (dl_apps[i] >= apps_.size()) {
      throw std::logic_error("store invariant: download event with invalid app");
    }
    if (dl_users[i] >= user_count_) {
      throw std::logic_error("store invariant: download event with invalid user");
    }
    ++recomputed[dl_apps[i]];
    ++recomputed_total;
  }
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (recomputed[i] != downloads_[i]) {
      throw std::logic_error(util::format(
          "store invariant: app {} counter {} != {} events", i, downloads_[i], recomputed[i]));
    }
  }
  if (recomputed_total != total_downloads_) {
    throw std::logic_error("store invariant: total download counter mismatch");
  }
  const auto cm_users = comment_log_.user();
  const auto cm_apps = comment_log_.app();
  for (std::size_t i = 0; i < comment_log_.size(); ++i) {
    if (cm_apps[i] >= apps_.size() || cm_users[i] >= user_count_) {
      throw std::logic_error("store invariant: comment event with invalid id");
    }
  }
  for (const auto& app : apps_) {
    if (app.developer.index() >= developers_.size()) {
      throw std::logic_error("store invariant: app with invalid developer");
    }
    if (app.category.index() >= categories_.size()) {
      throw std::logic_error("store invariant: app with invalid category");
    }
    if (!std::is_sorted(app.update_days.begin(), app.update_days.end())) {
      throw std::logic_error("store invariant: unsorted update days");
    }
  }
}

}  // namespace appstore::market
