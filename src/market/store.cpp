#include "market/store.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <stdexcept>

#include "util/format.hpp"

namespace appstore::market {

namespace {

// Download counters are updated with atomic_ref so record/ingest can run
// from many threads without promoting the members to std::atomic (which
// would cost AppStore its movability). Relaxed is enough: the counters are
// monitoring values, ordered against the event data only at quiescence.
void counter_add(std::uint64_t& cell, std::uint64_t n) noexcept {
  std::atomic_ref<std::uint64_t>(cell).fetch_add(n, std::memory_order_relaxed);
}

[[nodiscard]] std::uint64_t counter_read(const std::uint64_t& cell) noexcept {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(cell))
      .load(std::memory_order_relaxed);
}

[[nodiscard]] events::LiveOptions shaped(const events::LiveOptions& live,
                                         const char* suffix) {
  events::LiveOptions options = live;
  if (!options.backing_file.empty()) {
    options.backing_file += suffix;
  }
  return options;
}

}  // namespace

AppStore::AppStore(std::string name, const events::LiveOptions& live)
    : name_(std::move(name)),
      download_live_(std::make_unique<events::LiveEventLog>(
          events::Columns::kDay | events::Columns::kOrdinal, shaped(live, ".downloads"))),
      comment_live_(std::make_unique<events::LiveEventLog>(
          events::Columns::kDay | events::Columns::kOrdinal | events::Columns::kRating,
          shaped(live, ".comments"))) {}

CategoryId AppStore::add_category(std::string name) {
  const CategoryId id{static_cast<std::uint32_t>(categories_.size())};
  categories_.push_back(Category{id, std::move(name)});
  return id;
}

DeveloperId AppStore::add_developer(std::string name) {
  const DeveloperId id{static_cast<std::uint32_t>(developers_.size())};
  developers_.push_back(Developer{id, std::move(name)});
  return id;
}

UserId AppStore::add_user() { return add_users(1); }

UserId AppStore::add_users(std::uint32_t count) {
  if (static_cast<std::uint64_t>(user_count_) + count > download_live_->max_users()) {
    throw std::invalid_argument(util::format(
        "add_users: {} users exceeds the live store's max_users {}",
        static_cast<std::uint64_t>(user_count_) + count, download_live_->max_users()));
  }
  const UserId first{user_count_};
  user_count_ += count;
  return first;
}

AppId AppStore::add_app(std::string name, DeveloperId developer, CategoryId category,
                        Pricing pricing, Cents price, Day released) {
  if (!developer.valid() || developer.index() >= developers_.size()) {
    throw std::invalid_argument("add_app: invalid developer");
  }
  if (!category.valid() || category.index() >= categories_.size()) {
    throw std::invalid_argument("add_app: invalid category");
  }
  if (pricing == Pricing::kFree && price != 0) {
    throw std::invalid_argument("add_app: free app with nonzero price");
  }
  const AppId id{static_cast<std::uint32_t>(apps_.size())};
  apps_.push_back(App{.id = id,
                      .name = std::move(name),
                      .developer = developer,
                      .category = category,
                      .pricing = pricing,
                      .price = price,
                      .released = released,
                      .update_days = {},
                      .has_ads = false});
  downloads_.push_back(0);
  price_sum_dollars_.push_back(pricing == Pricing::kPaid ? cents_to_dollars(price) : 0.0);
  price_samples_.push_back(pricing == Pricing::kPaid ? 1u : 0u);
  return id;
}

void AppStore::record_update(AppId app, Day day) {
  auto& entry = apps_.at(app.index());
  entry.update_days.push_back(day);
  update_events_.push_back(
      UpdateEvent{app, day, static_cast<std::uint32_t>(entry.update_days.size())});
}

void AppStore::record_download(UserId user, AppId app, Day day) {
  if (user.index() >= user_count_) throw std::invalid_argument("record_download: invalid user");
  if (app.index() >= apps_.size()) throw std::invalid_argument("record_download: invalid app");
  counter_add(downloads_[app.index()], 1);
  counter_add(total_downloads_, 1);
  download_live_->append(user.value, app.value, day);
}

void AppStore::record_comment(UserId user, AppId app, Day day, std::uint8_t rating) {
  if (user.index() >= user_count_) throw std::invalid_argument("record_comment: invalid user");
  if (app.index() >= apps_.size()) throw std::invalid_argument("record_comment: invalid app");
  comment_live_->append(user.value, app.value, day, rating);
}

void AppStore::ingest_downloads(const events::EventLog& batch,
                                const events::IngestOptions& options) {
  const auto users = batch.user();
  const auto apps = batch.app();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (users[k] >= user_count_) {
      throw std::invalid_argument("ingest_downloads: invalid user");
    }
    if (apps[k] >= apps_.size()) {
      throw std::invalid_argument("ingest_downloads: invalid app");
    }
  }
  // Counters first, then the atomically-published block; a snapshot taken
  // mid-ingest sees the old frontier either way (see the class contract).
  for (const auto app : apps) counter_add(downloads_[app], 1);
  counter_add(total_downloads_, batch.size());
  download_live_->append_batch(batch, options);
}

void AppStore::ingest_comments(const events::EventLog& batch,
                               const events::IngestOptions& options) {
  const auto users = batch.user();
  const auto apps = batch.app();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (users[k] >= user_count_) {
      throw std::invalid_argument("ingest_comments: invalid user");
    }
    if (apps[k] >= apps_.size()) {
      throw std::invalid_argument("ingest_comments: invalid app");
    }
  }
  comment_live_->append_batch(batch, options);
}

void AppStore::adopt_event_logs(std::unique_ptr<events::LiveEventLog> downloads,
                                std::unique_ptr<events::LiveEventLog> comments) {
  if (downloads == nullptr || comments == nullptr) {
    throw std::invalid_argument("adopt_event_logs: null log");
  }
  if (downloads->columns() != (events::Columns::kDay | events::Columns::kOrdinal) ||
      comments->columns() !=
          (events::Columns::kDay | events::Columns::kOrdinal | events::Columns::kRating)) {
    throw std::invalid_argument("adopt_event_logs: column mask mismatch");
  }
  const auto validate = [this](const events::LiveEventLog& log, const char* what) {
    const events::FrontierSnapshot snapshot = log.snapshot();
    const auto users = snapshot.user();
    const auto apps = snapshot.app();
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (users[i] >= user_count_ || apps[i] >= apps_.size()) {
        throw std::invalid_argument(std::string("adopt_event_logs: invalid id in ") + what);
      }
    }
  };
  validate(*downloads, "downloads");
  validate(*comments, "comments");

  std::vector<std::uint64_t> counters(apps_.size(), 0);
  std::uint64_t total = 0;
  const events::FrontierSnapshot snapshot = downloads->snapshot();
  for (const std::uint32_t app : snapshot.app()) {
    ++counters[app];
    ++total;
  }
  downloads_ = std::move(counters);
  total_downloads_ = total;
  download_live_ = std::move(downloads);
  comment_live_ = std::move(comments);
}

void AppStore::restore_price_stats(AppId app, double price_sum_dollars,
                                   std::uint32_t price_samples) {
  price_sum_dollars_.at(app.index()) = price_sum_dollars;
  price_samples_.at(app.index()) = price_samples;
}

void AppStore::set_price(AppId app, Cents price, Day /*day*/) {
  auto& entry = apps_.at(app.index());
  if (entry.pricing != Pricing::kPaid) {
    throw std::invalid_argument("set_price: app is not paid");
  }
  entry.price = price;
  price_sum_dollars_.at(app.index()) += cents_to_dollars(price);
  ++price_samples_.at(app.index());
}

void AppStore::set_has_ads(AppId app, bool has_ads) {
  apps_.at(app.index()).has_ads = has_ads;
}

double AppStore::average_price_dollars(AppId id) const {
  const std::uint32_t samples = price_samples_.at(id.index());
  if (samples == 0) return 0.0;
  return price_sum_dollars_.at(id.index()) / static_cast<double>(samples);
}

std::uint64_t AppStore::downloads_of(AppId id) const {
  return counter_read(downloads_.at(id.index()));
}

std::uint64_t AppStore::total_downloads() const noexcept {
  return counter_read(total_downloads_);
}

void AppStore::build_stream_index(const events::BuildOptions& /*options*/) {
  // The tiered index is maintained by every append; nothing to build.
}

std::vector<std::uint32_t> AppStore::apps_per_category() const {
  std::vector<std::uint32_t> counts(categories_.size(), 0);
  for (const auto& app : apps_) ++counts[app.category.index()];
  return counts;
}

std::vector<double> AppStore::download_counts() const {
  std::vector<double> counts;
  counts.reserve(downloads_.size());
  for (const auto& d : downloads_) counts.push_back(static_cast<double>(counter_read(d)));
  return counts;
}

std::vector<double> AppStore::download_counts(Pricing pricing) const {
  std::vector<double> counts;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].pricing == pricing) {
      counts.push_back(static_cast<double>(counter_read(downloads_[i])));
    }
  }
  return counts;
}

std::vector<double> AppStore::downloads_by_rank() const {
  std::vector<double> counts = download_counts();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

std::vector<double> AppStore::downloads_by_rank(Pricing pricing) const {
  std::vector<double> counts = download_counts(pricing);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

void AppStore::check_invariants() const {
  if (downloads_.size() != apps_.size()) {
    throw std::logic_error("store invariant: download counter size mismatch");
  }
  std::uint64_t recomputed_total = 0;
  std::vector<std::uint64_t> recomputed(apps_.size(), 0);
  const events::FrontierSnapshot download_log = this->download_log();
  const auto dl_users = download_log.user();
  const auto dl_apps = download_log.app();
  for (std::size_t i = 0; i < download_log.size(); ++i) {
    if (dl_apps[i] >= apps_.size()) {
      throw std::logic_error("store invariant: download event with invalid app");
    }
    if (dl_users[i] >= user_count_) {
      throw std::logic_error("store invariant: download event with invalid user");
    }
    ++recomputed[dl_apps[i]];
    ++recomputed_total;
  }
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (recomputed[i] != counter_read(downloads_[i])) {
      throw std::logic_error(util::format("store invariant: app {} counter {} != {} events",
                                          i, counter_read(downloads_[i]), recomputed[i]));
    }
  }
  if (recomputed_total != counter_read(total_downloads_)) {
    throw std::logic_error("store invariant: total download counter mismatch");
  }
  const events::FrontierSnapshot comment_log = this->comment_log();
  const auto cm_users = comment_log.user();
  const auto cm_apps = comment_log.app();
  for (std::size_t i = 0; i < comment_log.size(); ++i) {
    if (cm_apps[i] >= apps_.size() || cm_users[i] >= user_count_) {
      throw std::logic_error("store invariant: comment event with invalid id");
    }
  }
  for (const auto& app : apps_) {
    if (app.developer.index() >= developers_.size()) {
      throw std::logic_error("store invariant: app with invalid developer");
    }
    if (app.category.index() >= categories_.size()) {
      throw std::logic_error("store invariant: app with invalid category");
    }
    if (!std::is_sorted(app.update_days.begin(), app.update_days.end())) {
      throw std::logic_error("store invariant: unsorted update days");
    }
  }
}

}  // namespace appstore::market
