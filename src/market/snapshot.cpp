#include "market/snapshot.hpp"

#include <algorithm>
#include <stdexcept>

namespace appstore::market {

void SnapshotSeries::add(Snapshot snapshot) {
  if (!snapshots_.empty() && snapshot.day <= snapshots_.back().day) {
    throw std::invalid_argument("SnapshotSeries: days must be strictly increasing");
  }
  snapshots_.push_back(snapshot);
}

double SnapshotSeries::new_apps_per_day() const {
  if (snapshots_.size() < 2) return 0.0;
  const auto& a = snapshots_.front();
  const auto& b = snapshots_.back();
  const double days = static_cast<double>(b.day - a.day);
  return (static_cast<double>(b.total_apps) - static_cast<double>(a.total_apps)) / days;
}

double SnapshotSeries::daily_downloads() const {
  if (snapshots_.size() < 2) return 0.0;
  const auto& a = snapshots_.front();
  const auto& b = snapshots_.back();
  const double days = static_cast<double>(b.day - a.day);
  return (static_cast<double>(b.total_downloads) - static_cast<double>(a.total_downloads)) /
         days;
}

DatasetSummary summarize(const std::string& store_name, const SnapshotSeries& series) {
  DatasetSummary summary;
  summary.store = store_name;
  if (series.empty()) return summary;
  summary.first_day = series.first().day;
  summary.last_day = series.last().day;
  summary.apps_first_day = series.first().total_apps;
  summary.apps_last_day = series.last().total_apps;
  summary.downloads_first_day = series.first().total_downloads;
  summary.downloads_last_day = series.last().total_downloads;
  summary.new_apps_per_day = series.new_apps_per_day();
  summary.daily_downloads = series.daily_downloads();
  return summary;
}

SnapshotSeries replay_snapshots(const AppStore& store, Day horizon) {
  // Releases per day.
  std::vector<std::uint64_t> releases(static_cast<std::size_t>(horizon) + 1, 0);
  for (const auto& app : store.apps()) {
    const Day day = std::clamp<Day>(app.released, 0, horizon);
    ++releases[static_cast<std::size_t>(day)];
  }
  // Downloads per day.
  std::vector<std::uint64_t> downloads(static_cast<std::size_t>(horizon) + 1, 0);
  for (const Day event_day : store.download_log().day()) {
    const Day day = std::clamp<Day>(event_day, 0, horizon);
    ++downloads[static_cast<std::size_t>(day)];
  }

  SnapshotSeries series;
  std::uint64_t apps_so_far = 0;
  std::uint64_t downloads_so_far = 0;
  for (Day day = 0; day <= horizon; ++day) {
    apps_so_far += releases[static_cast<std::size_t>(day)];
    downloads_so_far += downloads[static_cast<std::size_t>(day)];
    series.add(Snapshot{day, apps_so_far, downloads_so_far});
  }
  return series;
}

}  // namespace appstore::market
