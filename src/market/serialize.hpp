// AppStore persistence: save/load a fully-populated store as a directory of
// CSV files (entities + event streams).
//
// Lets expensive paper-scale generations be produced once and re-analyzed
// repeatedly, and gives the crawl pipeline a durable output format. Format:
//
//   <dir>/meta.csv        store name, user count
//   <dir>/categories.csv  id,name
//   <dir>/developers.csv  id,name
//   <dir>/apps.csv        id,name,developer,category,paid,price_cents,
//                         released,has_ads
//   <dir>/downloads.csv   user,app,day
//   <dir>/comments.csv    user,app,day,rating
//   <dir>/updates.csv     app,day
//
// load_store() rebuilds through the public AppStore API, so all invariants
// are re-established (and check_invariants() passes by construction).
#pragma once

#include <filesystem>
#include <memory>

#include "market/store.hpp"

namespace appstore::market {

/// Writes the store under `directory` (created if needed).
/// Throws std::runtime_error on I/O failure.
void save_store(const AppStore& store, const std::filesystem::path& directory);

/// Reads a store previously written by save_store.
/// Throws std::runtime_error on missing files or malformed content.
[[nodiscard]] std::unique_ptr<AppStore> load_store(const std::filesystem::path& directory);

}  // namespace appstore::market
