// AppStore persistence: save/load a fully-populated store as a directory of
// CSV files (entities + event streams).
//
// Lets expensive paper-scale generations be produced once and re-analyzed
// repeatedly, and gives the crawl pipeline a durable output format. Format:
//
//   <dir>/meta.csv        store name, user count
//   <dir>/categories.csv  id,name
//   <dir>/developers.csv  id,name
//   <dir>/apps.csv        id,name,developer,category,paid,price_cents,
//                         released,has_ads,price_sum_bits,price_samples
//   <dir>/downloads.csv   user,app,day
//   <dir>/comments.csv    user,app,day,rating
//   <dir>/updates.csv     app,day
//
// The entity files (everything except downloads/comments) are the
// "metadata" component of a durability checkpoint (market/durable.hpp),
// split out as save_entities/load_entities; the event CSVs exist only for
// the interchange path — checkpoints carry events as ALSG binaries.
// `price_sum_bits` is the price-observation sum as raw IEEE-754 bits (u64):
// a decimal rendering would round, and recovery must reproduce the
// accumulator bit-for-bit.
//
// load_store() rebuilds through the public AppStore API, so all invariants
// are re-established (and check_invariants() passes by construction).
#pragma once

#include <filesystem>
#include <memory>

#include "events/live_log.hpp"
#include "market/store.hpp"

namespace appstore::market {

/// Writes the store under `directory` (created if needed).
/// Throws std::runtime_error on I/O failure.
void save_store(const AppStore& store, const std::filesystem::path& directory);

/// Reads a store previously written by save_store.
/// Throws std::runtime_error on missing files or malformed content.
[[nodiscard]] std::unique_ptr<AppStore> load_store(const std::filesystem::path& directory);

/// Writes only the entity tables (meta/categories/developers/apps/updates)
/// — the checkpoint metadata component. No event CSVs.
void save_entities(const AppStore& store, const std::filesystem::path& directory);

/// Rebuilds a store from save_entities output: entities, update history,
/// and exact price stats, with empty event logs shaped by `live` (recovery
/// passes the capacity the ALSG segments will need). Pair with
/// adopt_event_logs to finish a checkpoint restore.
[[nodiscard]] std::unique_ptr<AppStore> load_entities(
    const std::filesystem::path& directory, const events::LiveOptions& live = {});

}  // namespace appstore::market
