#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

namespace appstore::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto index = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())) - 1.0);
  return sorted_[std::min(index, sorted_.size() - 1)];
}

std::vector<double> Ecdf::evaluate(std::span<const double> points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const double p : points) out.push_back(at(p));
  return out;
}

std::vector<Ecdf::Point> Ecdf::steps() const {
  std::vector<Point> points;
  const std::size_t n = sorted_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Emit only the last occurrence of each distinct value.
    if (i + 1 < n && sorted_[i + 1] == sorted_[i]) continue;
    points.push_back(Point{sorted_[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  return points;
}

double ks_statistic(const Ecdf& a, const Ecdf& b) noexcept {
  double best = 0.0;
  for (const double x : a.sorted()) best = std::max(best, std::fabs(a.at(x) - b.at(x)));
  for (const double x : b.sorted()) best = std::max(best, std::fabs(a.at(x) - b.at(x)));
  return best;
}

}  // namespace appstore::stats
