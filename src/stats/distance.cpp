#include "stats/distance.hpp"

#include <cmath>
#include <stdexcept>

namespace appstore::stats {

double mean_relative_error(std::span<const double> observed,
                           std::span<const double> simulated) {
  if (observed.size() != simulated.size()) {
    throw std::invalid_argument("mean_relative_error: size mismatch");
  }
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] <= 0.0) continue;
    total += std::fabs(observed[i] - simulated[i]) / observed[i];
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double smape(std::span<const double> observed, std::span<const double> simulated) {
  if (observed.size() != simulated.size()) throw std::invalid_argument("smape: size mismatch");
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double denom = std::fabs(observed[i]) + std::fabs(simulated[i]);
    if (denom == 0.0) continue;
    total += 2.0 * std::fabs(observed[i] - simulated[i]) / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double log_rmse(std::span<const double> observed, std::span<const double> simulated) {
  if (observed.size() != simulated.size()) throw std::invalid_argument("log_rmse: size mismatch");
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] <= 0.0 || simulated[i] <= 0.0) continue;
    const double d = std::log10(observed[i]) - std::log10(simulated[i]);
    total += d * d;
    ++counted;
  }
  return counted == 0 ? 0.0 : std::sqrt(total / static_cast<double>(counted));
}

}  // namespace appstore::stats
