// Empirical cumulative distribution functions.
//
// Most of the paper's figures are ECDFs (Figs. 2, 4, 5, 7, 13, 16); this
// class is the single representation benches use to print/export them.
#pragma once

#include <span>
#include <vector>

namespace appstore::stats {

class Ecdf {
 public:
  Ecdf() = default;

  /// Builds from a sample; stores a sorted copy.
  explicit Ecdf(std::span<const double> sample);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x) = P[X <= x] (right-continuous step function).
  [[nodiscard]] double at(double x) const noexcept;

  /// Smallest sample value v with F(v) >= q (inverse CDF / quantile).
  [[nodiscard]] double inverse(double q) const noexcept;

  /// Underlying sorted sample.
  [[nodiscard]] std::span<const double> sorted() const noexcept { return sorted_; }

  /// Evaluates F at each of the given points.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> points) const;

  /// (x, F(x)) pairs at every distinct sample value — ready for plotting.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> steps() const;

 private:
  std::vector<double> sorted_;
};

/// Two-sample Kolmogorov–Smirnov statistic: sup |F1 - F2|.
[[nodiscard]] double ks_statistic(const Ecdf& a, const Ecdf& b) noexcept;

}  // namespace appstore::stats
