// Maximum-likelihood power-law estimation (Clauset–Shalizi–Newman style).
//
// The log–log least-squares fit of powerlaw.hpp matches what the paper's
// figures report; the MLE estimator here is the statistically sound
// alternative used by the ablation benches to confirm that trunk-slope
// conclusions are not an artifact of the fitting method.
#pragma once

#include <cstdint>
#include <span>

namespace appstore::stats {

struct MleFit {
  /// Estimated exponent alpha of p(x) ~ x^-alpha for x >= xmin.
  double alpha = 0.0;
  /// Lower cutoff actually used.
  double xmin = 1.0;
  /// Number of samples at or above xmin.
  std::size_t tail_samples = 0;
  /// Standard error of alpha: (alpha-1)/sqrt(n).
  double alpha_stderr = 0.0;
  /// KS distance between the empirical tail and the fitted power law.
  double ks = 0.0;
};

/// MLE for a fixed xmin. Continuous data (discrete = false):
///   alpha = 1 + n / sum_i ln(x_i / xmin).
/// Integer data such as download counts (discrete = true, the default) uses
/// the standard -1/2 continuity correction: ln(x_i / (xmin - 1/2)).
/// Values below xmin are ignored. Requires at least 2 tail samples.
[[nodiscard]] MleFit fit_power_law_mle(std::span<const double> values, double xmin,
                                       bool discrete = true);

/// Scans candidate xmin values (the distinct sample values up to the
/// `max_candidates` smallest) and returns the fit minimizing the KS distance
/// — the standard Clauset xmin selection.
[[nodiscard]] MleFit fit_power_law_mle_auto(std::span<const double> values,
                                            std::size_t max_candidates = 50,
                                            bool discrete = true);

}  // namespace appstore::stats
