#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"

namespace appstore::stats {

Interval normal_ci(std::span<const double> sample, double z) {
  const double m = mean(sample);
  const double se = stderr_mean(sample);
  return Interval{m - z * se, m + z * se};
}

Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                           std::size_t resamples, double confidence) {
  if (sample.empty()) return Interval{};
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      total += sample[static_cast<std::size_t>(rng.below(sample.size()))];
    }
    means.push_back(total / static_cast<double>(sample.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  return Interval{quantile_sorted(means, alpha), quantile_sorted(means, 1.0 - alpha)};
}

}  // namespace appstore::stats
