#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "par/parallel.hpp"
#include "stats/descriptive.hpp"

namespace appstore::stats {

Interval normal_ci(std::span<const double> sample, double z) {
  const double m = mean(sample);
  const double se = stderr_mean(sample);
  return Interval{m - z * se, m + z * se};
}

Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                           const BootstrapOptions& options) {
  if (sample.empty() || options.resamples == 0) return Interval{};
  const std::uint64_t base = rng();
  const par::Options par_options{.threads = options.threads,
                                 .metrics = options.metrics};
  std::vector<double> means = par::parallel_map<double>(
      options.resamples, par_options, [&](std::uint64_t replicate) {
        util::Rng replicate_rng = util::rng::derive(base, replicate);
        double total = 0.0;
        for (std::size_t i = 0; i < sample.size(); ++i) {
          total += sample[static_cast<std::size_t>(replicate_rng.below(sample.size()))];
        }
        return total / static_cast<double>(sample.size());
      });
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  return Interval{quantile_sorted(means, alpha), quantile_sorted(means, 1.0 - alpha)};
}

Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                           std::size_t resamples, double confidence) {
  return bootstrap_mean_ci(sample, rng,
                           BootstrapOptions{.resamples = resamples, .confidence = confidence});
}

}  // namespace appstore::stats
