#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace appstore::stats {

LinearHistogram::LinearHistogram(double lo, double hi, double width) : lo_(lo), width_(width) {
  if (!(hi > lo) || !(width > 0)) {
    throw std::invalid_argument("LinearHistogram: need hi > lo and width > 0");
  }
  const auto count = static_cast<std::size_t>(std::ceil((hi - lo) / width));
  bins_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bins_.push_back(Bin{lo + width * static_cast<double>(i),
                        lo + width * static_cast<double>(i + 1), 0, 0.0});
  }
}

void LinearHistogram::add(double x, double weight) noexcept {
  if (bins_.empty()) return;
  auto index = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  index = std::clamp<std::ptrdiff_t>(index, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  auto& bin = bins_[static_cast<std::size_t>(index)];
  ++bin.count;
  bin.sum += weight;
  ++total_;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bin_count) {
  if (!(lo > 0) || !(hi > lo) || bin_count == 0) {
    throw std::invalid_argument("LogHistogram: need hi > lo > 0 and bins > 0");
  }
  log_lo_ = std::log(lo);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(bin_count);
  bins_.reserve(bin_count);
  for (std::size_t i = 0; i < bin_count; ++i) {
    bins_.push_back(Bin{std::exp(log_lo_ + log_step_ * static_cast<double>(i)),
                        std::exp(log_lo_ + log_step_ * static_cast<double>(i + 1)), 0, 0.0});
  }
}

void LogHistogram::add(double x, double weight) noexcept {
  if (bins_.empty() || !(x > 0)) return;
  auto index = static_cast<std::ptrdiff_t>(std::floor((std::log(x) - log_lo_) / log_step_));
  index = std::clamp<std::ptrdiff_t>(index, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  auto& bin = bins_[static_cast<std::size_t>(index)];
  ++bin.count;
  bin.sum += weight;
  ++total_;
}

}  // namespace appstore::stats
