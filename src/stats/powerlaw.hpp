// Power-law (Zipf) fitting on rank–frequency data.
//
// Fig. 3 reports the slope of the "main trunk" of each appstore's log–log
// rank–download curve (1.42, 1.51, 0.92, 0.90) with the truncated head and
// tail excluded. We provide a least-squares slope fit on log–log data, plus
// automatic trunk detection that trims the flattened head and the collapsing
// tail before fitting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appstore::stats {

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t points = 0;
};

/// Ordinary least squares y = intercept + slope * x.
[[nodiscard]] LineFit fit_line(std::span<const double> x, std::span<const double> y);

struct PowerLawFit {
  /// Zipf exponent (positive; downloads ~ rank^{-exponent}).
  double exponent = 0.0;
  /// log10 of the scale constant: log10(downloads) = c - exponent*log10(rank).
  double log10_constant = 0.0;
  double r_squared = 0.0;
  /// 1-based rank range [first_rank, last_rank] used for the fit.
  std::size_t first_rank = 1;
  std::size_t last_rank = 1;

  /// Model prediction at a given rank.
  [[nodiscard]] double predict(double rank) const noexcept;
};

/// Fits downloads ~ rank^{-z} over the given 1-based rank range.
/// `downloads_by_rank[i]` is the downloads of the app with rank i+1 (sorted
/// descending). Zero entries are skipped (log undefined).
[[nodiscard]] PowerLawFit fit_power_law(std::span<const double> downloads_by_rank,
                                        std::size_t first_rank, std::size_t last_rank);

/// Trunk-detecting fit for truncated Zipf curves (Fig. 3): trims the
/// head fraction and tail fraction whose removal maximizes R² over a small
/// candidate grid, then fits the remaining trunk.
[[nodiscard]] PowerLawFit fit_power_law_trunk(std::span<const double> downloads_by_rank);

/// Evaluates how far a curve deviates from its own trunk fit at head/tail —
/// used to quantify the "truncated at both ends" observation.
struct TruncationReport {
  PowerLawFit trunk;
  /// measured/predicted at rank 1 (<1 means head truncation: measured below fit).
  double head_ratio = 1.0;
  /// measured/predicted at the last nonzero rank (<1 means tail truncation).
  double tail_ratio = 1.0;
};

[[nodiscard]] TruncationReport analyze_truncation(std::span<const double> downloads_by_rank);

}  // namespace appstore::stats
