// Correlation coefficients.
//
// The paper reports Pearson correlations for price–downloads (−0.229),
// price–#apps (−0.240), income–#apps (0.008), and the per-category revenue
// relationships (§6.2). Spearman is included for robustness checks.
#pragma once

#include <span>

namespace appstore::stats {

/// Pearson product-moment correlation; 0 if either side is constant.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace appstore::stats
