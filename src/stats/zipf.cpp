#include "stats/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace appstore::stats {

double generalized_harmonic(std::uint64_t n, double s) noexcept {
  // Sum smallest terms first to reduce floating-point error.
  double total = 0.0;
  for (std::uint64_t k = n; k >= 1; --k) {
    total += std::pow(static_cast<double>(k), -s);
  }
  return total;
}

FiniteZipf::FiniteZipf(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("FiniteZipf: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("FiniteZipf: exponent must be >= 0");
  harmonic_ = generalized_harmonic(n, s);
}

double FiniteZipf::pmf(std::uint64_t rank) const noexcept {
  if (rank < 1 || rank > n_) return 0.0;
  return std::pow(static_cast<double>(rank), -s_) / harmonic_;
}

double FiniteZipf::cdf(std::uint64_t rank) const noexcept {
  if (rank == 0) return 0.0;
  if (rank >= n_) return 1.0;
  double total = 0.0;
  for (std::uint64_t k = 1; k <= rank; ++k) {
    total += std::pow(static_cast<double>(k), -s_);
  }
  return total / harmonic_;
}

std::vector<double> FiniteZipf::probabilities() const {
  std::vector<double> probabilities(n_);
  for (std::uint64_t k = 1; k <= n_; ++k) {
    probabilities[k - 1] = std::pow(static_cast<double>(k), -s_) / harmonic_;
  }
  return probabilities;
}

std::vector<double> FiniteZipf::expected_counts(double draws) const {
  std::vector<double> counts = probabilities();
  for (double& c : counts) c *= draws;
  return counts;
}

namespace {

std::vector<double> zipf_weights(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  std::vector<double> weights(n);
  for (std::uint64_t k = 1; k <= n; ++k) {
    weights[k - 1] = std::pow(static_cast<double>(k), -s);
  }
  return weights;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
    : n_(n), s_(s), table_(zipf_weights(n, s)) {}

}  // namespace appstore::stats
