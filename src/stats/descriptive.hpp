// Descriptive statistics over contiguous numeric data.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appstore::stats {

[[nodiscard]] double sum(std::span<const double> values) noexcept;
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> values) noexcept;
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Standard error of the mean.
[[nodiscard]] double stderr_mean(std::span<const double> values) noexcept;

/// Linear-interpolated quantile, q in [0,1]. Sorts a copy; O(n log n).
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Quantile over data the caller has already sorted ascending; O(1).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

[[nodiscard]] double median(std::span<const double> values);

[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

/// Gini coefficient of a non-negative distribution (0 = equal, →1 = skewed).
/// Used to characterize income skew across developers (§6.2).
[[nodiscard]] double gini(std::span<const double> values);

/// Welford-style streaming accumulator for one-pass mean/variance.
class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace appstore::stats
