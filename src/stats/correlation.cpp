#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace appstore::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;

  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Fractional ranks with ties averaged (standard Spearman treatment).
std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double average_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  const std::vector<double> rx = fractional_ranks(x);
  const std::vector<double> ry = fractional_ranks(y);
  return pearson(rx, ry);
}

}  // namespace appstore::stats
