#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace appstore::stats {

double sum(std::span<const double> values) noexcept {
  // Kahan summation: benches aggregate millions of download counts and the
  // compensated sum keeps Eq.-6 distances stable across orderings.
  double total = 0.0;
  double compensation = 0.0;
  for (const double v : values) {
    const double y = v - compensation;
    const double t = total + y;
    compensation = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(n - 1);
}

double stddev(std::span<const double> values) noexcept { return std::sqrt(variance(values)); }

double stderr_mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return stddev(values) / std::sqrt(static_cast<double>(values.size()));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto low = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(low);
  if (low + 1 >= sorted.size()) return sorted.back();
  return sorted[low] * (1.0 - fraction) + sorted[low + 1] * fraction;
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double min_value(std::span<const double> values) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (const double v : values) best = std::min(best, v);
  return best;
}

double max_value(std::span<const double> values) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  for (const double v : values) best = std::max(best, v);
  return best;
}

double gini(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  const double dn = static_cast<double>(n);
  return (2.0 * weighted) / (dn * total) - (dn + 1.0) / dn;
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

}  // namespace appstore::stats
