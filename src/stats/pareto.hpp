// Pareto / concentration analysis of popularity distributions.
//
// Fig. 2: the CDF of the percentage of downloads as a function of normalized
// app rank — "10% of the apps account for 90% of the downloads" — plus the
// zoomed-in top-1% inset.
#pragma once

#include <span>
#include <vector>

namespace appstore::stats {

struct ShareCurvePoint {
  double rank_percent;      ///< top-x% of apps (0..100]
  double download_percent;  ///< share of total downloads held by that top-x%
};

/// Builds the cumulative download-share curve over `counts` (any order; the
/// function sorts descending internally). `points` values of rank_percent are
/// evaluated; pass e.g. {1, 2, ..., 100}.
[[nodiscard]] std::vector<ShareCurvePoint> share_curve(std::span<const double> counts,
                                                       std::span<const double> rank_percents);

/// Share of total held by the top `top_fraction` (0..1] of items.
[[nodiscard]] double top_share(std::span<const double> counts, double top_fraction);

/// Lorenz curve: (population fraction, cumulative share) sorted ascending —
/// the standard inequality representation, complementary to share_curve.
struct LorenzPoint {
  double population_fraction;
  double cumulative_share;
};
[[nodiscard]] std::vector<LorenzPoint> lorenz_curve(std::span<const double> counts,
                                                    std::size_t resolution = 100);

}  // namespace appstore::stats
