#include "stats/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace appstore::stats {

namespace {

/// Descending-sorted copy with its prefix sums; shared by all three queries.
struct Prefix {
  std::vector<double> sorted;
  std::vector<double> cumulative;  // cumulative[i] = sum of top i+1 values
  double total = 0.0;
};

Prefix build_prefix(std::span<const double> counts) {
  Prefix p;
  p.sorted.assign(counts.begin(), counts.end());
  std::sort(p.sorted.begin(), p.sorted.end(), std::greater<>());
  p.cumulative.resize(p.sorted.size());
  double run = 0.0;
  for (std::size_t i = 0; i < p.sorted.size(); ++i) {
    run += p.sorted[i];
    p.cumulative[i] = run;
  }
  p.total = run;
  return p;
}

}  // namespace

std::vector<ShareCurvePoint> share_curve(std::span<const double> counts,
                                         std::span<const double> rank_percents) {
  const Prefix p = build_prefix(counts);
  std::vector<ShareCurvePoint> curve;
  curve.reserve(rank_percents.size());
  for (const double percent : rank_percents) {
    ShareCurvePoint point{percent, 0.0};
    if (!p.sorted.empty() && p.total > 0.0 && percent > 0.0) {
      auto k = static_cast<std::size_t>(
          std::ceil(percent / 100.0 * static_cast<double>(p.sorted.size())));
      k = std::clamp<std::size_t>(k, 1, p.sorted.size());
      point.download_percent = 100.0 * p.cumulative[k - 1] / p.total;
    }
    curve.push_back(point);
  }
  return curve;
}

double top_share(std::span<const double> counts, double top_fraction) {
  const Prefix p = build_prefix(counts);
  if (p.sorted.empty() || p.total <= 0.0 || top_fraction <= 0.0) return 0.0;
  auto k = static_cast<std::size_t>(
      std::ceil(top_fraction * static_cast<double>(p.sorted.size())));
  k = std::clamp<std::size_t>(k, 1, p.sorted.size());
  return p.cumulative[k - 1] / p.total;
}

std::vector<LorenzPoint> lorenz_curve(std::span<const double> counts, std::size_t resolution) {
  std::vector<double> ascending(counts.begin(), counts.end());
  std::sort(ascending.begin(), ascending.end());
  double total = 0.0;
  for (const double v : ascending) total += v;

  std::vector<LorenzPoint> curve;
  curve.reserve(resolution + 1);
  curve.push_back(LorenzPoint{0.0, 0.0});
  if (ascending.empty() || total <= 0.0) return curve;

  double run = 0.0;
  std::size_t consumed = 0;
  for (std::size_t step = 1; step <= resolution; ++step) {
    const auto target = static_cast<std::size_t>(
        std::round(static_cast<double>(step) / static_cast<double>(resolution) *
                   static_cast<double>(ascending.size())));
    while (consumed < target && consumed < ascending.size()) {
      run += ascending[consumed++];
    }
    curve.push_back(LorenzPoint{static_cast<double>(consumed) /
                                    static_cast<double>(ascending.size()),
                                run / total});
  }
  return curve;
}

}  // namespace appstore::stats
