#include "stats/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace appstore::stats {

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_line: size mismatch");
  LineFit fit;
  fit.points = x.size();
  if (x.size() < 2) return fit;

  const double n = static_cast<double>(x.size());
  double sum_x = 0.0, sum_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double PowerLawFit::predict(double rank) const noexcept {
  return std::pow(10.0, log10_constant - exponent * std::log10(rank));
}

PowerLawFit fit_power_law(std::span<const double> downloads_by_rank, std::size_t first_rank,
                          std::size_t last_rank) {
  if (downloads_by_rank.empty()) throw std::invalid_argument("fit_power_law: empty data");
  first_rank = std::max<std::size_t>(first_rank, 1);
  last_rank = std::min(last_rank, downloads_by_rank.size());
  if (first_rank > last_rank) throw std::invalid_argument("fit_power_law: empty rank range");

  std::vector<double> log_rank;
  std::vector<double> log_downloads;
  log_rank.reserve(last_rank - first_rank + 1);
  log_downloads.reserve(last_rank - first_rank + 1);
  for (std::size_t rank = first_rank; rank <= last_rank; ++rank) {
    const double d = downloads_by_rank[rank - 1];
    if (d <= 0.0) continue;
    log_rank.push_back(std::log10(static_cast<double>(rank)));
    log_downloads.push_back(std::log10(d));
  }

  PowerLawFit fit;
  fit.first_rank = first_rank;
  fit.last_rank = last_rank;
  const LineFit line = fit_line(log_rank, log_downloads);
  fit.exponent = -line.slope;
  fit.log10_constant = line.intercept;
  fit.r_squared = line.r_squared;
  return fit;
}

PowerLawFit fit_power_law_trunk(std::span<const double> downloads_by_rank) {
  if (downloads_by_rank.empty()) throw std::invalid_argument("fit_power_law_trunk: empty data");
  // Last rank with a positive download count: ranks past it carry no signal.
  std::size_t last_nonzero = downloads_by_rank.size();
  while (last_nonzero > 0 && downloads_by_rank[last_nonzero - 1] <= 0.0) --last_nonzero;
  if (last_nonzero < 3) return fit_power_law(downloads_by_rank, 1, downloads_by_rank.size());

  // Candidate trims: drop the flattened head (fetch-at-most-once plateau) and
  // the collapsing tail (clustering effect), keeping at least half a decade
  // of ranks. The grid is coarse on purpose — the trunk is broad and the fit
  // is insensitive to the exact cut.
  constexpr double kHeadFractions[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};
  constexpr double kTailFractions[] = {0.0, 0.05, 0.10, 0.20, 0.30};

  PowerLawFit best;
  double best_score = -1.0;
  for (const double head : kHeadFractions) {
    for (const double tail : kTailFractions) {
      const auto first =
          std::max<std::size_t>(1, static_cast<std::size_t>(head * static_cast<double>(last_nonzero)) + 1);
      const auto last = last_nonzero -
                        static_cast<std::size_t>(tail * static_cast<double>(last_nonzero));
      if (last <= first + 10) continue;
      const PowerLawFit fit = fit_power_law(downloads_by_rank, first, last);
      // Prefer high R²; break ties toward wider ranges (more data).
      const double width_bonus =
          0.01 * std::log10(static_cast<double>(last - first + 1));
      const double score = fit.r_squared + width_bonus;
      if (score > best_score) {
        best_score = score;
        best = fit;
      }
    }
  }
  if (best_score < 0.0) return fit_power_law(downloads_by_rank, 1, last_nonzero);
  return best;
}

TruncationReport analyze_truncation(std::span<const double> downloads_by_rank) {
  TruncationReport report;
  report.trunk = fit_power_law_trunk(downloads_by_rank);

  std::size_t last_nonzero = downloads_by_rank.size();
  while (last_nonzero > 0 && downloads_by_rank[last_nonzero - 1] <= 0.0) --last_nonzero;

  if (!downloads_by_rank.empty() && downloads_by_rank.front() > 0.0) {
    report.head_ratio = downloads_by_rank.front() / report.trunk.predict(1.0);
  }
  if (last_nonzero > 0) {
    report.tail_ratio = downloads_by_rank[last_nonzero - 1] /
                        report.trunk.predict(static_cast<double>(last_nonzero));
  }
  return report;
}

}  // namespace appstore::stats
