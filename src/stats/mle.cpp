#include "stats/mle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace appstore::stats {

namespace {

/// KS distance between the empirical distribution of `tail` (sorted
/// ascending, all >= xmin) and the continuous power-law CDF
/// F(x) = 1 - (x/xmin)^(1-alpha).
double ks_distance(std::span<const double> tail, double xmin, double alpha) {
  const double n = static_cast<double>(tail.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const double model = 1.0 - std::pow(tail[i] / xmin, 1.0 - alpha);
    const double empirical_high = static_cast<double>(i + 1) / n;
    const double empirical_low = static_cast<double>(i) / n;
    worst = std::max(worst, std::fabs(model - empirical_high));
    worst = std::max(worst, std::fabs(model - empirical_low));
  }
  return worst;
}

}  // namespace

MleFit fit_power_law_mle(std::span<const double> values, double xmin,
                         bool discrete) {
  if (xmin <= 0.0) throw std::invalid_argument("fit_power_law_mle: xmin must be > 0");
  std::vector<double> tail;
  for (const double v : values) {
    if (v >= xmin) tail.push_back(v);
  }
  MleFit fit;
  fit.xmin = xmin;
  fit.tail_samples = tail.size();
  if (tail.size() < 2) return fit;
  std::sort(tail.begin(), tail.end());

  const double shifted_min =
      discrete ? std::max(xmin - 0.5, 0.5) : xmin;  // continuity correction
  double log_sum = 0.0;
  for (const double v : tail) log_sum += std::log(v / shifted_min);
  if (log_sum <= 0.0) return fit;

  const double n = static_cast<double>(tail.size());
  fit.alpha = 1.0 + n / log_sum;
  fit.alpha_stderr = (fit.alpha - 1.0) / std::sqrt(n);
  fit.ks = ks_distance(tail, xmin, fit.alpha);
  return fit;
}

MleFit fit_power_law_mle_auto(std::span<const double> values,
                              std::size_t max_candidates, bool discrete) {
  // Candidate xmins: up to max_candidates distinct positive values, spread
  // evenly over the sorted distinct range so large cutoffs are considered.
  std::vector<double> distinct;
  for (const double v : values) {
    if (v > 0.0) distinct.push_back(v);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.empty()) return MleFit{};
  if (distinct.size() > max_candidates) {
    std::vector<double> sampled;
    sampled.reserve(max_candidates);
    const double step =
        static_cast<double>(distinct.size() - 1) / static_cast<double>(max_candidates - 1);
    for (std::size_t k = 0; k < max_candidates; ++k) {
      sampled.push_back(distinct[static_cast<std::size_t>(step * static_cast<double>(k))]);
    }
    distinct = std::move(sampled);
  }

  MleFit best;
  bool found = false;
  for (const double xmin : distinct) {
    const MleFit fit = fit_power_law_mle(values, xmin, discrete);
    if (fit.tail_samples < 10) continue;  // too little tail to judge
    if (!found || fit.ks < best.ks) {
      best = fit;
      found = true;
    }
  }
  return found ? best : fit_power_law_mle(values, distinct.front(), discrete);
}

}  // namespace appstore::stats
