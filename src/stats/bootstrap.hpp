// Confidence intervals.
//
// Fig. 6 plots per-group average affinity with 95% confidence intervals.
// We provide both the normal-approximation interval (what the paper's
// error bars almost certainly are) and a percentile bootstrap for small
// groups where normality is doubtful.
#pragma once

#include <span>

#include "util/rng.hpp"

namespace appstore::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  [[nodiscard]] double width() const noexcept { return upper - lower; }
  [[nodiscard]] bool contains(double v) const noexcept { return v >= lower && v <= upper; }
};

/// mean ± z * stderr; z defaults to 1.96 (95%).
[[nodiscard]] Interval normal_ci(std::span<const double> sample, double z = 1.96);

/// Percentile bootstrap CI for the mean.
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                         std::size_t resamples = 1000,
                                         double confidence = 0.95);

}  // namespace appstore::stats
