// Confidence intervals.
//
// Fig. 6 plots per-group average affinity with 95% confidence intervals.
// We provide both the normal-approximation interval (what the paper's
// error bars almost certainly are) and a percentile bootstrap for small
// groups where normality is doubtful.
#pragma once

#include <span>

#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace appstore::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  [[nodiscard]] double width() const noexcept { return upper - lower; }
  [[nodiscard]] bool contains(double v) const noexcept { return v >= lower && v <= upper; }
};

/// mean ± z * stderr; z defaults to 1.96 (95%).
[[nodiscard]] Interval normal_ci(std::span<const double> sample, double z = 1.96);

/// Options for bootstrap_mean_ci (the Options-struct API).
struct BootstrapOptions {
  std::size_t resamples = 1000;
  double confidence = 0.95;
  /// Worker threads for the resampling loop; 0 = hardware_concurrency.
  /// Every replicate draws from its own derived RNG stream
  /// (util::rng::derive), so the interval is bit-identical at every thread
  /// count for a fixed incoming rng state.
  std::size_t threads = 0;
  /// Optional metrics sink for the par_* families.
  obs::Registry* metrics = nullptr;
};

/// Percentile bootstrap CI for the mean. Consumes exactly one draw from
/// `rng` (the base seed for the per-replicate derived streams).
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                         const BootstrapOptions& options);

/// Deprecated positional form; forwards to the BootstrapOptions overload.
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                         std::size_t resamples = 1000,
                                         double confidence = 0.95);

}  // namespace appstore::stats
