// Distribution distance measures.
//
// Eq. 6 of the paper: the fit quality between observed and simulated
// rank–download curves is the mean relative error
//   distance = (1/A) * sum_i |Do(i) - Ds(i)| / Do(i)
// taken over apps ranked by observed downloads.
#pragma once

#include <span>

namespace appstore::stats {

/// Mean relative error (Eq. 6). Ranks where observed == 0 are skipped (the
/// paper's stores always report >= 1 download for listed apps; synthetic
/// tails can contain zeros).
[[nodiscard]] double mean_relative_error(std::span<const double> observed,
                                         std::span<const double> simulated);

/// Symmetric mean absolute percentage error — a bounded alternative used in
/// ablation benches to confirm rankings are not an artifact of Eq. 6.
[[nodiscard]] double smape(std::span<const double> observed, std::span<const double> simulated);

/// Root mean squared error in log10 space (skips non-positive pairs).
[[nodiscard]] double log_rmse(std::span<const double> observed,
                              std::span<const double> simulated);

}  // namespace appstore::stats
