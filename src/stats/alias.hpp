// Walker/Vose alias method: O(n) construction, O(1) sampling from an
// arbitrary finite discrete distribution.
//
// Every download drawn in the Monte Carlo simulators (§5.2) is a draw from a
// finite Zipf distribution over up to ~156k apps; alias tables make a
// multi-million-download simulation run in seconds on one core.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace appstore::stats {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights (need not be normalized).
  /// Throws std::invalid_argument on empty input, negative weights, or an
  /// all-zero weight vector.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  [[nodiscard]] bool empty() const noexcept { return probability_.empty(); }

  /// Draws one index with probability proportional to its weight.
  [[nodiscard]] std::size_t sample(util::Rng& rng) const noexcept;

  /// Normalized probability of index i (for tests / analytic checks).
  [[nodiscard]] double probability_of(std::size_t i) const noexcept {
    return normalized_[i];
  }

 private:
  std::vector<double> probability_;   ///< acceptance threshold per column
  std::vector<std::uint32_t> alias_;  ///< fallback index per column
  std::vector<double> normalized_;    ///< original weights / total
};

}  // namespace appstore::stats
