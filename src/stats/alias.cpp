#include "stats/alias.hpp"

#include <limits>
#include <stdexcept>

namespace appstore::stats {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("AliasTable: too many weights");
  }

  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: all weights zero");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; columns with mass < 1 are "small", >= 1 "large".
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residuals are exactly 1 up to floating error.
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t AliasTable::sample(util::Rng& rng) const noexcept {
  const std::size_t column = static_cast<std::size_t>(rng.below(probability_.size()));
  return rng.uniform() < probability_[column] ? column : alias_[column];
}

}  // namespace appstore::stats
