// Linear- and logarithmic-binned histograms.
//
// Fig. 12 bins paid apps by one-dollar price ranges (linear bins); the
// rank–download plots use log-spaced bins when down-sampling for export.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace appstore::stats {

struct Bin {
  double lower;          ///< inclusive
  double upper;          ///< exclusive
  std::uint64_t count;   ///< number of samples in the bin
  double sum;            ///< sum of an associated weight/value per sample
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  [[nodiscard]] double center() const noexcept { return 0.5 * (lower + upper); }
};

/// Fixed-width histogram over [lo, hi) with the given bin width.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, double width);

  /// Adds a sample; out-of-range samples are clamped into the edge bins.
  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::span<const Bin> bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<Bin> bins_;
  std::uint64_t total_ = 0;
};

/// Histogram with logarithmically spaced bin edges over [lo, hi), lo > 0.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bin_count);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::span<const Bin> bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }

 private:
  double log_lo_;
  double log_step_;
  std::vector<Bin> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace appstore::stats
