// Finite Zipf (zeta) distribution over ranks 1..N with exponent s:
//   P[rank = k] = (1/k^s) / H_{N,s},   H_{N,s} = sum_{k=1..N} 1/k^s.
//
// This is the building block of all three download models in §5: the global
// distribution ZG (exponent zr) and the per-cluster distributions Zc
// (exponent zc) are finite Zipfs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/alias.hpp"
#include "util/rng.hpp"

namespace appstore::stats {

/// Generalized harmonic number H_{n,s} = sum_{k=1..n} k^{-s}.
[[nodiscard]] double generalized_harmonic(std::uint64_t n, double s) noexcept;

class FiniteZipf {
 public:
  /// n >= 1 ranks, any real exponent s >= 0 (s = 0 is uniform).
  FiniteZipf(std::uint64_t n, double s);

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// P[rank = k], k in [1, n].
  [[nodiscard]] double pmf(std::uint64_t rank) const noexcept;

  /// P[rank <= k].
  [[nodiscard]] double cdf(std::uint64_t rank) const noexcept;

  /// All n probabilities in rank order (1-indexed rank k at index k-1).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Expected downloads per rank for `draws` independent draws.
  [[nodiscard]] std::vector<double> expected_counts(double draws) const;

 private:
  std::uint64_t n_;
  double s_;
  double harmonic_;
};

/// O(1) sampler over a finite Zipf using an alias table.
/// Construction is O(n); intended to be built once per distribution and
/// shared across millions of draws.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Returns a rank in [1, n].
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const noexcept {
    return static_cast<std::uint64_t>(table_.sample(rng)) + 1;
  }

  /// Returns a 0-based index in [0, n).
  [[nodiscard]] std::size_t sample_index(util::Rng& rng) const noexcept {
    return table_.sample(rng);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }
  [[nodiscard]] const AliasTable& table() const noexcept { return table_; }

 private:
  std::uint64_t n_;
  double s_;
  AliasTable table_;
};

}  // namespace appstore::stats
