// JSON reporting for load-harness runs (results/BENCH_serving.json).
//
// A RunReport serializes to the shape documented in docs/serving.md; a
// ServingComparison wraps the baseline (thread-per-connection, cache off)
// and candidate (worker pool + response cache) runs of bench_serving with
// the derived speedup and the service's cache counters. Values round-trip
// through crawlersim::parse_json (load_test covers this).
#pragma once

#include <cstdint>
#include <string>

#include "crawler/json.hpp"
#include "load/harness.hpp"

namespace appstore::load {

/// Side-by-side result of the two serving architectures under an identical
/// schedule (the ISSUE 5 acceptance comparison).
struct ServingComparison {
  RunReport baseline;     ///< ServerMode::kThreadPerConnection, cache off
  RunReport worker_pool;  ///< ServerMode::kWorkerPool + response cache
  double speedup = 0.0;   ///< worker_pool.throughput_rps / baseline.throughput_rps
  std::uint64_t cache_hits = 0;    ///< service_response_cache_total{hit}
  std::uint64_t cache_misses = 0;  ///< service_response_cache_total{miss}
  std::string notes;
};

[[nodiscard]] crawlersim::Json to_json(const Totals& totals);
[[nodiscard]] crawlersim::Json to_json(const EndpointLatency& latency);
[[nodiscard]] crawlersim::Json to_json(const RunReport& report);
[[nodiscard]] crawlersim::Json to_json(const ServingComparison& comparison);

/// Writes `value.dump()` to `path` (creating parent directories is the
/// caller's job); false with a warning log on I/O failure.
bool write_json_file(const crawlersim::Json& value, const std::string& path);

}  // namespace appstore::load
