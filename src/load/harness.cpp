#include "load/harness.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/server.hpp"
#include "util/logging.hpp"

namespace appstore::load {

namespace {

constexpr std::string_view kComponent = "load";

constexpr std::string_view kOutcomeLabels[5] = {"ok", "http_4xx", "http_5xx", "shed",
                                                "transport_error"};

/// Exact quantile of a sorted sample (nearest-rank); 0 when empty.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Per-thread tallies, merged once at the end (latency histograms in the
/// metrics registry are atomic and written directly).
struct ClientTally {
  Totals totals;
  std::vector<double> latency[kOpKindCount];  ///< seconds, by op kind
};

struct LoadMetrics {
  obs::Counter* outcomes[5] = {};
  obs::Histogram* latency[kOpKindCount] = {};
};

[[nodiscard]] LoadMetrics resolve_metrics(obs::Registry* registry) {
  LoadMetrics metrics;
  if (registry == nullptr) return metrics;
  registry->describe("load_requests_total", "Load-generator requests by outcome");
  registry->describe("load_latency_seconds", "Client-observed latency by endpoint");
  for (std::size_t i = 0; i < 5; ++i) {
    metrics.outcomes[i] = &registry->counter("load_requests_total", kOutcomeLabels[i]);
  }
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    metrics.latency[i] =
        &registry->histogram("load_latency_seconds", to_string(static_cast<OpKind>(i)));
  }
  return metrics;
}

void classify(const net::HttpResponse& response, Totals& totals) {
  if (response.status == 503) {
    ++totals.shed;
    // Attribution written by HttpServer::shed_connection; a 503 produced
    // below the socket layer has no header and stays unattributed.
    const auto reason = response.headers.find("X-Shed-Reason");
    if (reason != response.headers.end()) {
      if (reason->second == "accept") {
        ++totals.shed_accept;
      } else if (reason->second == "queue") {
        ++totals.shed_queue;
      } else if (reason->second == "admission") {
        ++totals.shed_admission;
      }
    }
  } else if (response.status >= 500) {
    ++totals.http_5xx;
  } else if (response.status >= 400) {
    ++totals.http_4xx;
  } else {
    ++totals.ok;
  }
}

}  // namespace

RunReport run(const Schedule& schedule, const RunOptions& options) {
  if (options.service == nullptr && !options.respond) {
    throw std::invalid_argument("load::run: null service");
  }
  if (options.respond && options.over_sockets) {
    throw std::invalid_argument("load::run: respond hook is in-process only");
  }
  if (schedule.per_client.empty()) {
    throw std::invalid_argument("load::run: empty schedule");
  }
  const LoadMetrics metrics = resolve_metrics(options.metrics);
  const std::size_t clients = schedule.per_client.size();
  std::vector<ClientTally> tallies(clients);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      const std::string client_id = options.client_prefix + "-" + std::to_string(c);
      std::unique_ptr<net::PersistentHttpClient> socket_client;
      if (options.over_sockets) {
        socket_client = std::make_unique<net::PersistentHttpClient>(
            "127.0.0.1", options.service->port(),
            net::ClientOptions{.timeout = options.timeout});
      }
      const auto client_start = chaos::now_or_real(options.clock);
      for (const Request& request : schedule.per_client[c]) {
        if (schedule.open_loop()) {
          // Open loop: the request is due at its pre-drawn arrival whether
          // or not earlier ones have completed; a client that fell behind
          // issues immediately (the classic coordinated-omission guard).
          const auto due = client_start + request.arrival;
          const auto now = chaos::now_or_real(options.clock);
          if (due > now) chaos::sleep_or_real(options.clock, due - now);
        }
        ++tally.totals.issued;
        const auto start = std::chrono::steady_clock::now();
        try {
          net::HttpResponse response;
          if (socket_client != nullptr) {
            response = socket_client->get(request.target, {{"X-Client-Id", client_id}});
          } else {
            net::HttpRequest http;
            http.target = request.target;
            http.headers["X-Client-Id"] = client_id;
            response = options.respond ? options.respond(http)
                                       : options.service->respond(http);
          }
          classify(response, tally.totals);
        } catch (const std::exception&) {
          ++tally.totals.transport_errors;
        }
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        const auto op = static_cast<std::size_t>(request.kind);
        tally.latency[op].push_back(seconds);
        if (metrics.latency[op] != nullptr) metrics.latency[op]->observe(seconds);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  RunReport report;
  report.schedule = schedule.options;
  report.over_sockets = options.over_sockets;
  report.wall_seconds = wall_seconds;
  std::vector<double> merged[kOpKindCount];
  for (const ClientTally& tally : tallies) {
    report.totals.issued += tally.totals.issued;
    report.totals.ok += tally.totals.ok;
    report.totals.http_4xx += tally.totals.http_4xx;
    report.totals.http_5xx += tally.totals.http_5xx;
    report.totals.shed += tally.totals.shed;
    report.totals.transport_errors += tally.totals.transport_errors;
    report.totals.shed_accept += tally.totals.shed_accept;
    report.totals.shed_queue += tally.totals.shed_queue;
    report.totals.shed_admission += tally.totals.shed_admission;
    for (std::size_t op = 0; op < kOpKindCount; ++op) {
      merged[op].insert(merged[op].end(), tally.latency[op].begin(),
                        tally.latency[op].end());
    }
  }
  if (metrics.outcomes[0] != nullptr) {
    metrics.outcomes[0]->inc(report.totals.ok);
    metrics.outcomes[1]->inc(report.totals.http_4xx);
    metrics.outcomes[2]->inc(report.totals.http_5xx);
    metrics.outcomes[3]->inc(report.totals.shed);
    metrics.outcomes[4]->inc(report.totals.transport_errors);
  }
  report.throughput_rps =
      wall_seconds > 0.0 ? static_cast<double>(report.totals.issued) / wall_seconds : 0.0;
  for (std::size_t op = 0; op < kOpKindCount; ++op) {
    std::sort(merged[op].begin(), merged[op].end());
    EndpointLatency summary;
    summary.endpoint = to_string(static_cast<OpKind>(op));
    summary.count = merged[op].size();
    if (!merged[op].empty()) {
      double sum = 0.0;
      for (const double v : merged[op]) sum += v;
      summary.mean = sum / static_cast<double>(merged[op].size());
      summary.p50 = quantile_sorted(merged[op], 0.50);
      summary.p90 = quantile_sorted(merged[op], 0.90);
      summary.p99 = quantile_sorted(merged[op], 0.99);
    }
    report.latency.push_back(std::move(summary));
  }
  util::log_info(kComponent,
                 "{} requests in {:.3f}s ({:.0f} rps): {} ok, {} 4xx, {} 5xx, {} shed, "
                 "{} transport errors",
                 report.totals.issued, wall_seconds, report.throughput_rps,
                 report.totals.ok, report.totals.http_4xx, report.totals.http_5xx,
                 report.totals.shed, report.totals.transport_errors);
  return report;
}

}  // namespace appstore::load
