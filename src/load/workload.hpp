// Deterministic request-schedule generation for the load harness.
//
// A Schedule is a pure function of (ScheduleOptions, seed): per client, a
// seeded RNG (util::rng::derive — the same splitmix64 derivation the par
// engine uses for shard determinism) draws a request mix whose app-detail
// targets follow the store's own popularity structure — the clustered-Zipf
// model of §5 (global ZG with exponent zr; with probability p the next
// request stays in the previous app's cluster, sampled by the within-cluster
// Zipf Zc). The load we generate is therefore shaped like the workload the
// paper measured, not uniform noise: popular apps are hit far more often,
// and consecutive requests are correlated within clusters.
//
// Open-loop schedules additionally pre-draw Poisson arrival offsets (as
// virtual nanoseconds from client start), so the arrival process is part of
// the schedule and identically reproducible at any worker count.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::load {

/// Request classes the generator emits (the read-only crawl surface plus
/// the online analytics endpoint).
enum class OpKind : std::uint8_t { kMeta = 0, kApps, kApp, kComments, kQuery };
constexpr std::size_t kOpKindCount = 5;

/// Metric/report label for an op kind ("meta", "apps", ...).
[[nodiscard]] std::string_view to_string(OpKind kind) noexcept;

/// Shape of the request mix: endpoint weights plus the popularity model for
/// app-detail targets.
struct MixOptions {
  double meta_weight = 0.05;      ///< GET /api/meta
  double apps_weight = 0.35;      ///< GET /api/apps?page=...
  double app_weight = 0.45;       ///< GET /api/app/<id>
  double comments_weight = 0.15;  ///< GET /api/app/<id>/comments
  /// GET /api/v1/query — the analytics mix (defaults to 0 so existing
  /// schedules are unchanged). Targets rotate over the four aggregate kinds;
  /// top_k_downloads draws a user-selective filter from query_user_count.
  double query_weight = 0.0;
  std::uint32_t query_user_count = 1000;
  /// Apps addressable by detail requests; ids in [0, app_count).
  std::uint32_t app_count = 1000;
  /// Directory pages sampled uniformly in [0, directory_pages).
  std::uint32_t directory_pages = 10;
  std::uint32_t per_page = 100;
  /// Clustered-Zipf popularity (Table 2 notation): global exponent zr,
  /// clustering probability p, within-cluster exponent zc over C clusters.
  double zr = 0.6;
  double p = 0.8;
  double zc = 1.0;
  std::uint32_t cluster_count = 25;
};

struct ScheduleOptions {
  std::uint64_t seed = 0x10adULL;
  std::uint32_t clients = 8;
  std::uint32_t requests_per_client = 200;
  /// Per-client open-loop arrival rate (Poisson). 0 = closed loop: each
  /// client issues the next request as soon as the previous one completes.
  double open_loop_rate_hz = 0.0;
  MixOptions mix;
};

struct Request {
  OpKind kind = OpKind::kMeta;
  std::string target;
  /// Open loop: offset from client start at which the request is due.
  /// Closed loop: zero.
  std::chrono::nanoseconds arrival{0};
};

struct Schedule {
  ScheduleOptions options;
  std::vector<std::vector<Request>> per_client;

  [[nodiscard]] bool open_loop() const noexcept { return options.open_loop_rate_hz > 0.0; }
  [[nodiscard]] std::size_t total_requests() const noexcept;
};

/// Builds the full request schedule. Deterministic: equal options (including
/// seed) produce an identical schedule, independent of thread count, machine
/// or run — the property load_test pins down.
[[nodiscard]] Schedule build_schedule(const ScheduleOptions& options);

}  // namespace appstore::load
