// Execution harness: drives an AppstoreService with a load::Schedule.
//
// Two transports:
//   * in-process — each client thread calls AppstoreService::respond()
//     directly, exercising the full policy + cache path without socket
//     overhead (the deterministic mode load_test asserts invariants on);
//   * over sockets — each client owns one net::PersistentHttpClient, so the
//     run also measures the server architecture (keep-alive reuse, worker
//     pool, queueing).
//
// Closed loop: each client issues its next request when the previous one
// completes (throughput is capacity-bound). Open loop: requests are due at
// the schedule's pre-drawn Poisson arrivals regardless of completions — the
// harness sleeps to the next arrival via the chaos clock, so tests can run
// open-loop schedules on a VirtualClock in microseconds of wall time.
//
// Outcome accounting is total: every scheduled request lands in exactly one
// of ok / http_4xx / http_5xx / shed (503) / transport_error, so
//   issued == ok + http_4xx + http_5xx + shed + transport_error
// always holds (load_test pins this).
//
// When RunOptions.metrics is set, the harness records into the families
//   load_requests_total{ok|http_4xx|http_5xx|shed|transport_error}
//   load_latency_seconds{meta|apps|app|comments}
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/clock.hpp"
#include "crawler/service.hpp"
#include "load/workload.hpp"
#include "obs/registry.hpp"

namespace appstore::load {

struct RunOptions {
  /// Service under load. Required unless `respond` is set; must outlive the
  /// run.
  crawlersim::AppstoreService* service = nullptr;
  /// Alternative in-process target: when set, every request goes through
  /// this callable instead of service->respond() — how the federation
  /// gateway (or any non-AppstoreService front end) is driven by the same
  /// harness. Incompatible with over_sockets; `service` may then be null.
  std::function<net::HttpResponse(const net::HttpRequest&)> respond{};
  /// false = in-process via respond(); true = real sockets via one
  /// PersistentHttpClient per client thread.
  bool over_sockets = false;
  /// Client ids are "<client_prefix>-<index>" (the X-Client-Id header, i.e.
  /// the per-client rate-limit identity).
  std::string client_prefix = "load";
  std::chrono::milliseconds timeout = std::chrono::milliseconds(5000);
  /// Optional sink for load_* metric families. Must outlive the run.
  obs::Registry* metrics = nullptr;
  /// Clock for open-loop pacing (nullptr = real time). A VirtualClock makes
  /// open-loop runs instantaneous and deterministic. Must outlive the run.
  chaos::Clock* clock = nullptr;
};

struct Totals {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;                ///< status < 400
  std::uint64_t http_4xx = 0;          ///< 4xx other than shed
  std::uint64_t http_5xx = 0;          ///< 5xx other than shed
  std::uint64_t shed = 0;              ///< 503 (server load shedding)
  std::uint64_t transport_errors = 0;  ///< exceptions (resets, timeouts)
  /// Shed attribution from the server's X-Shed-Reason header, so game-day
  /// trajectories can tell the shed layers apart. A 503 without the header
  /// (e.g. an in-process 503 below the socket layer) counts only in `shed`,
  /// so shed >= shed_accept + shed_queue + shed_admission always holds.
  std::uint64_t shed_accept = 0;     ///< accept-time (max_connections)
  std::uint64_t shed_queue = 0;      ///< ready queue at its hard ceiling
  std::uint64_t shed_admission = 0;  ///< adaptive admission limit
};

/// Latency summary for one endpoint class (seconds).
struct EndpointLatency {
  std::string endpoint;
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct RunReport {
  ScheduleOptions schedule;
  bool over_sockets = false;
  Totals totals;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< issued / wall_seconds
  std::vector<EndpointLatency> latency;  ///< one entry per OpKind, in order
};

/// Runs the schedule against the service (one thread per client) and
/// summarizes. Throws std::invalid_argument when options.service is null or
/// the schedule is empty.
[[nodiscard]] RunReport run(const Schedule& schedule, const RunOptions& options);

}  // namespace appstore::load
