// Game-day scenarios: multi-phase, seed-pure load shapes over build_schedule.
//
// A Scenario composes the stationary generator into the traffic patterns the
// paper (and its follow-ups in PAPERS.md) actually measured:
//
//   * kFlashCrowd — a new hit app launches: steady traffic, then a spike at
//     peak_multiplier× the base rate whose app-detail targets concentrate on
//     the head of the Zipf popularity curve (higher zr, stickier clusters),
//     then recovery at the base rate.
//   * kUpdateStorm — the synchronized update waves of Fig. 4: calm, then a
//     storm at peak_multiplier× dominated by directory/meta polling (every
//     device re-checking for updates), then a drain phase.
//   * kDiurnal — a full day compressed into duration_seconds: twelve equal
//     segments whose rates trace a raised-cosine day curve from the base
//     rate up to peak_multiplier× at "midday" and back. With
//     peak_multiplier past worker-pool saturation the midday segments drive
//     the server over capacity while the night segments stay under it.
//
// Determinism: build_scenario is a pure function of ScenarioOptions — each
// phase derives its own schedule seed via util::rng::derive_seed, phases are
// truncated to their window (a Poisson process conditioned on a window is
// still Poisson) and spliced per client with arrivals offset to scenario
// time, so equal options yield byte-identical scenarios on any machine.
//
// Faults: ScenarioFaults describes the seeded chaos overlay (proxy resets,
// injected 500s, latency at FaultSite::kServer); gameday_fault_plan turns it
// into the chaos::FaultPlan a service-side FaultInjector replays. The plan
// is part of the scenario value, so "scenario × fault seed" names one exact
// replayable game day. Replayed on a chaos::VirtualClock, a full day runs in
// seconds of wall time (arrival sleeps and injected latency advance virtual
// time instantly).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault.hpp"
#include "load/workload.hpp"

namespace appstore::load {

enum class ScenarioKind : std::uint8_t { kFlashCrowd = 0, kUpdateStorm, kDiurnal };

/// Report/metric label for a kind ("flash_crowd", "update_storm", "diurnal").
[[nodiscard]] std::string_view to_string(ScenarioKind kind) noexcept;

/// Seeded chaos overlay of a scenario (rate 0 = no faults).
struct ScenarioFaults {
  std::uint64_t seed = 0xfa117ULL;
  /// Total per-request fault probability, split evenly across connection
  /// resets, injected 500s, and latency injection at FaultSite::kServer.
  double rate = 0.0;
  std::chrono::milliseconds latency{50};  ///< injected latency per hit
  /// Per-target fault cap (chaos::FaultPlan::max_faults_per_key); 0 = uncapped.
  std::uint32_t max_faults_per_key = 4;
};

struct ScenarioOptions {
  ScenarioKind kind = ScenarioKind::kFlashCrowd;
  std::uint64_t seed = 0xda7eULL;
  std::uint32_t clients = 8;
  /// Per-client open-loop arrival rate of the quiet phases (Hz); offered
  /// load is clients × rate.
  double base_rate_hz = 50.0;
  /// Peak rate as a multiple of base_rate_hz (the flash/storm/midday rate).
  double peak_multiplier = 8.0;
  /// Total scenario length in (virtual) seconds.
  double duration_seconds = 60.0;
  /// Mix of the quiet phases; spike phases derive their own shifted mixes.
  MixOptions mix;
  ScenarioFaults faults;
};

/// One contiguous phase of a scenario (times in scenario seconds).
struct ScenarioPhase {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  double rate_hz = 0.0;  ///< per-client open-loop rate during the phase
  MixOptions mix;
};

struct Scenario {
  ScenarioOptions options;
  std::vector<ScenarioPhase> phases;
  /// The spliced per-client schedule: arrivals are scenario-absolute and
  /// non-decreasing per client; schedule.open_loop() is always true.
  Schedule schedule;
  /// The chaos overlay (nullopt when options.faults.rate == 0).
  std::optional<chaos::FaultPlan> fault_plan;

  /// Offered load of the hottest phase (clients × max phase rate).
  [[nodiscard]] double peak_offered_rps() const noexcept;
};

/// Builds the scenario. Deterministic: equal options (including both seeds)
/// produce an identical scenario — phases, schedule, and fault plan.
[[nodiscard]] Scenario build_scenario(const ScenarioOptions& options);

/// The fault plan a ScenarioFaults overlay describes (usable standalone,
/// e.g. by bench_gameday to compose extra latency rules).
[[nodiscard]] chaos::FaultPlan gameday_fault_plan(const ScenarioFaults& faults);

}  // namespace appstore::load
