#include "load/workload.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "models/params.hpp"
#include "stats/zipf.hpp"
#include "util/rng.hpp"

namespace appstore::load {

std::string_view to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kMeta: return "meta";
    case OpKind::kApps: return "apps";
    case OpKind::kApp: return "app";
    case OpKind::kComments: return "comments";
    case OpKind::kQuery: return "query";
  }
  return "?";
}

std::size_t Schedule::total_requests() const noexcept {
  std::size_t total = 0;
  for (const auto& client : per_client) total += client.size();
  return total;
}

namespace {

/// Samples app ids with the clustered-Zipf structure of §5: with probability
/// p the draw stays in the previous app's cluster (within-cluster Zipf Zc
/// over the members in popularity order), otherwise the global Zipf ZG picks
/// by global rank. Samplers are built once and shared across clients — each
/// client only carries its RNG and its own previous-app state, so schedules
/// stay a pure function of the per-client seed.
class AppPicker {
 public:
  explicit AppPicker(const MixOptions& mix)
      : mix_(mix),
        layout_(models::ClusterLayout::round_robin(mix.app_count, mix.cluster_count)),
        global_(mix.app_count, mix.zr) {
    // Round-robin clusters have at most two distinct sizes (±1).
    for (std::uint32_t c = 0; c < layout_.cluster_count(); ++c) {
      const auto size = static_cast<std::uint64_t>(layout_.members(c).size());
      if (size > 0) within_.try_emplace(size, size, mix.zc);
    }
  }

  [[nodiscard]] std::uint32_t pick(util::Rng& rng, std::uint32_t& previous) const {
    std::uint32_t app = 0;
    if (previous < mix_.app_count && rng.chance(mix_.p)) {
      const auto& members = layout_.members(layout_.cluster_of(previous));
      const auto& sampler = within_.at(static_cast<std::uint64_t>(members.size()));
      app = members[sampler.sample_index(rng)];
    } else {
      app = static_cast<std::uint32_t>(global_.sample_index(rng));
    }
    previous = app;
    return app;
  }

 private:
  MixOptions mix_;
  models::ClusterLayout layout_;
  stats::ZipfSampler global_;
  std::map<std::uint64_t, stats::ZipfSampler> within_;  ///< by cluster size
};

}  // namespace

Schedule build_schedule(const ScheduleOptions& options) {
  const MixOptions& mix = options.mix;
  if (mix.app_count == 0) throw std::invalid_argument("build_schedule: app_count == 0");
  if (mix.cluster_count == 0) {
    throw std::invalid_argument("build_schedule: cluster_count == 0");
  }
  const double weights[kOpKindCount] = {mix.meta_weight, mix.apps_weight, mix.app_weight,
                                        mix.comments_weight, mix.query_weight};
  double total_weight = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("build_schedule: negative weight");
    total_weight += w;
  }
  if (total_weight <= 0.0) throw std::invalid_argument("build_schedule: zero weights");

  const AppPicker picker(mix);
  const std::uint32_t pages = mix.directory_pages == 0 ? 1 : mix.directory_pages;

  Schedule schedule;
  schedule.options = options;
  schedule.per_client.resize(options.clients);
  for (std::uint32_t client = 0; client < options.clients; ++client) {
    util::Rng rng = util::rng::derive(options.seed, client);
    std::uint32_t previous = mix.app_count;  // sentinel: no previous app yet
    double arrival_seconds = 0.0;
    auto& requests = schedule.per_client[client];
    requests.reserve(options.requests_per_client);
    for (std::uint32_t i = 0; i < options.requests_per_client; ++i) {
      Request request;
      const double roll = rng.uniform() * total_weight;
      double cumulative = 0.0;
      std::size_t op = kOpKindCount - 1;
      for (std::size_t k = 0; k < kOpKindCount; ++k) {
        cumulative += weights[k];
        if (roll < cumulative) {
          op = k;
          break;
        }
      }
      request.kind = static_cast<OpKind>(op);
      switch (request.kind) {
        case OpKind::kMeta:
          request.target = "/api/meta";
          break;
        case OpKind::kApps:
          request.target = "/api/apps?page=" + std::to_string(rng.below(pages)) +
                           "&per_page=" + std::to_string(mix.per_page);
          break;
        case OpKind::kApp:
          request.target = "/api/app/" + std::to_string(picker.pick(rng, previous));
          break;
        case OpKind::kComments:
          request.target =
              "/api/app/" + std::to_string(picker.pick(rng, previous)) + "/comments?page=0";
          break;
        case OpKind::kQuery:
          // Rotate over the aggregate kinds; the top-k form carries a
          // user-selective filter (the planner's index-scan case), the rest
          // are store-wide and hit the per-day response cache.
          switch (rng.below(4)) {
            case 0:
              request.target = "/api/v1/query?kind=top_k_downloads&k=10&filter=user==" +
                               std::to_string(rng.below(mix.query_user_count == 0
                                                            ? 1
                                                            : mix.query_user_count));
              break;
            case 1:
              request.target = "/api/v1/query?kind=pareto_share";
              break;
            case 2:
              request.target = "/api/v1/query?kind=category_affinity&depths=1";
              break;
            default:
              request.target = "/api/v1/query?kind=rank_download_curve&points=50";
              break;
          }
          break;
      }
      if (options.open_loop_rate_hz > 0.0) {
        // Poisson arrivals: exponential inter-arrival gaps at the target
        // rate, accumulated so arrivals are strictly increasing.
        const double gap =
            -std::log1p(-rng.uniform()) / options.open_loop_rate_hz;
        arrival_seconds += gap;
        request.arrival =
            std::chrono::nanoseconds(static_cast<std::int64_t>(arrival_seconds * 1e9));
      }
      requests.push_back(std::move(request));
    }
  }
  return schedule;
}

}  // namespace appstore::load
