#include "load/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace appstore::load {

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kFlashCrowd: return "flash_crowd";
    case ScenarioKind::kUpdateStorm: return "update_storm";
    case ScenarioKind::kDiurnal: return "diurnal";
  }
  return "?";
}

double Scenario::peak_offered_rps() const noexcept {
  double peak = 0.0;
  for (const ScenarioPhase& phase : phases) peak = std::max(peak, phase.rate_hz);
  return peak * static_cast<double>(options.clients);
}

chaos::FaultPlan gameday_fault_plan(const ScenarioFaults& faults) {
  chaos::FaultPlan plan;
  plan.seed = faults.seed;
  plan.max_faults_per_key = faults.max_faults_per_key;
  const double each = faults.rate / 3.0;
  plan.rules = {
      {chaos::FaultSite::kServer, chaos::FaultKind::kConnectionReset, each, {}},
      {chaos::FaultSite::kServer, chaos::FaultKind::kHttp500, each, {}},
      {chaos::FaultSite::kServer, chaos::FaultKind::kLatency, each, faults.latency},
  };
  return plan;
}

namespace {

/// The flash phase's mix: app-detail heavy and concentrated on the head of
/// the popularity curve (a launch sends everyone to the same few apps).
[[nodiscard]] MixOptions flash_mix(MixOptions mix) {
  mix.meta_weight = 0.02;
  mix.apps_weight = 0.08;
  mix.app_weight = 0.65;
  mix.comments_weight = 0.25;
  mix.zr = std::min(1.4, mix.zr + 0.5);
  mix.p = 0.9;
  return mix;
}

/// The storm phase's mix: every device polling the directory and metadata
/// for updates (Fig. 4's synchronized waves), few organic detail views.
[[nodiscard]] MixOptions storm_mix(MixOptions mix) {
  mix.meta_weight = 0.15;
  mix.apps_weight = 0.45;
  mix.app_weight = 0.35;
  mix.comments_weight = 0.05;
  mix.zr = std::min(1.2, mix.zr + 0.3);
  mix.p = 0.95;
  return mix;
}

[[nodiscard]] std::vector<ScenarioPhase> layout_phases(const ScenarioOptions& options) {
  const double base = options.base_rate_hz;
  const double peak = base * options.peak_multiplier;
  const double total = options.duration_seconds;
  std::vector<ScenarioPhase> phases;
  switch (options.kind) {
    case ScenarioKind::kFlashCrowd:
      phases = {
          {"steady", 0.0, 0.4 * total, base, options.mix},
          {"flash", 0.4 * total, 0.2 * total, peak, flash_mix(options.mix)},
          {"recovery", 0.6 * total, 0.4 * total, base, options.mix},
      };
      break;
    case ScenarioKind::kUpdateStorm:
      phases = {
          {"calm", 0.0, 0.3 * total, base, options.mix},
          {"storm", 0.3 * total, 0.3 * total, peak, storm_mix(options.mix)},
          {"drain", 0.6 * total, 0.4 * total, base, options.mix},
      };
      break;
    case ScenarioKind::kDiurnal: {
      // Raised-cosine day curve sampled at twelve "two-hour" segments:
      // rate(i) = base + (peak - base) * (1 - cos(2π (i+½)/12)) / 2, so the
      // night segments run at ~base and the midday ones at ~peak.
      constexpr int kSegments = 12;
      const double segment = total / kSegments;
      phases.reserve(kSegments);
      for (int i = 0; i < kSegments; ++i) {
        const double phase_angle =
            2.0 * std::numbers::pi * (static_cast<double>(i) + 0.5) / kSegments;
        const double rate = base + (peak - base) * (1.0 - std::cos(phase_angle)) / 2.0;
        phases.push_back({"h" + std::to_string(2 * i), static_cast<double>(i) * segment,
                          segment, rate, options.mix});
      }
      break;
    }
  }
  return phases;
}

}  // namespace

Scenario build_scenario(const ScenarioOptions& options) {
  if (options.clients == 0) throw std::invalid_argument("build_scenario: zero clients");
  if (options.base_rate_hz <= 0.0) {
    throw std::invalid_argument("build_scenario: base_rate_hz <= 0");
  }
  if (options.peak_multiplier < 1.0) {
    throw std::invalid_argument("build_scenario: peak_multiplier < 1");
  }
  if (options.duration_seconds <= 0.0) {
    throw std::invalid_argument("build_scenario: duration_seconds <= 0");
  }

  Scenario scenario;
  scenario.options = options;
  scenario.phases = layout_phases(options);
  if (options.faults.rate > 0.0) {
    scenario.fault_plan = gameday_fault_plan(options.faults);
  }

  Schedule& spliced = scenario.schedule;
  spliced.per_client.resize(options.clients);
  std::size_t longest_client = 0;
  for (std::size_t index = 0; index < scenario.phases.size(); ++index) {
    const ScenarioPhase& phase = scenario.phases[index];
    ScheduleOptions phase_options;
    // Every phase draws from its own derived stream, so editing one phase's
    // shape cannot perturb another's schedule.
    phase_options.seed = util::rng::derive_seed(options.seed, index);
    phase_options.clients = options.clients;
    phase_options.open_loop_rate_hz = phase.rate_hz;
    phase_options.mix = phase.mix;
    // Draw ~1.5× the expected count, then truncate to the phase window — a
    // Poisson process conditioned on a window is still Poisson, so the
    // truncation keeps both the rate and the inter-arrival law exact.
    const double expected = phase.rate_hz * phase.duration_seconds;
    phase_options.requests_per_client =
        static_cast<std::uint32_t>(std::ceil(expected * 1.5)) + 8;
    const Schedule drawn = build_schedule(phase_options);
    const auto window = std::chrono::nanoseconds(
        static_cast<std::int64_t>(phase.duration_seconds * 1e9));
    const auto offset = std::chrono::nanoseconds(
        static_cast<std::int64_t>(phase.start_seconds * 1e9));
    for (std::uint32_t client = 0; client < options.clients; ++client) {
      auto& out = spliced.per_client[client];
      for (const Request& request : drawn.per_client[client]) {
        if (request.arrival >= window) break;  // arrivals are non-decreasing
        Request shifted = request;
        shifted.arrival += offset;
        out.push_back(std::move(shifted));
      }
      longest_client = std::max(longest_client, out.size());
    }
  }

  // The spliced schedule's own options describe the scenario envelope: a
  // non-zero open_loop_rate_hz marks it open-loop for the harness, and the
  // per-client count records the longest client for reporting.
  spliced.options.seed = options.seed;
  spliced.options.clients = options.clients;
  spliced.options.requests_per_client = static_cast<std::uint32_t>(longest_client);
  spliced.options.open_loop_rate_hz = options.base_rate_hz;
  spliced.options.mix = options.mix;
  return scenario;
}

}  // namespace appstore::load
