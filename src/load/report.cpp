#include "load/report.hpp"

#include <fstream>

#include "util/logging.hpp"

namespace appstore::load {

using crawlersim::Json;
using crawlersim::JsonArray;
using crawlersim::json_object;

Json to_json(const Totals& totals) {
  return json_object({{"issued", totals.issued},
                      {"ok", totals.ok},
                      {"http_4xx", totals.http_4xx},
                      {"http_5xx", totals.http_5xx},
                      {"shed", totals.shed},
                      {"transport_errors", totals.transport_errors},
                      {"shed_breakdown",
                       json_object({{"accept", totals.shed_accept},
                                    {"queue", totals.shed_queue},
                                    {"admission", totals.shed_admission}})}});
}

Json to_json(const EndpointLatency& latency) {
  return json_object({{"endpoint", latency.endpoint},
                      {"count", latency.count},
                      {"mean_seconds", latency.mean},
                      {"p50_seconds", latency.p50},
                      {"p90_seconds", latency.p90},
                      {"p99_seconds", latency.p99}});
}

Json to_json(const RunReport& report) {
  const ScheduleOptions& schedule = report.schedule;
  JsonArray latency;
  latency.reserve(report.latency.size());
  for (const EndpointLatency& entry : report.latency) latency.push_back(to_json(entry));
  return json_object(
      {{"schedule",
        json_object({{"seed", schedule.seed},
                     {"clients", static_cast<std::uint64_t>(schedule.clients)},
                     {"requests_per_client",
                      static_cast<std::uint64_t>(schedule.requests_per_client)},
                     {"open_loop_rate_hz", schedule.open_loop_rate_hz}})},
       {"over_sockets", report.over_sockets},
       {"totals", to_json(report.totals)},
       {"wall_seconds", report.wall_seconds},
       {"throughput_rps", report.throughput_rps},
       {"latency", Json(std::move(latency))}});
}

Json to_json(const ServingComparison& comparison) {
  return json_object({{"baseline_thread_per_connection", to_json(comparison.baseline)},
                      {"worker_pool_with_cache", to_json(comparison.worker_pool)},
                      {"speedup", comparison.speedup},
                      {"response_cache_hits", comparison.cache_hits},
                      {"response_cache_misses", comparison.cache_misses},
                      {"notes", comparison.notes}});
}

bool write_json_file(const Json& value, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_warn("load", "cannot open {} for writing", path);
    return false;
  }
  out << value.dump() << '\n';
  return static_cast<bool>(out);
}

}  // namespace appstore::load
