#include "affinity/metric.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace appstore::affinity {

std::optional<double> affinity(std::span<const std::uint32_t> categories, std::size_t depth) {
  if (depth == 0) throw std::invalid_argument("affinity: depth must be >= 1");
  const std::size_t n = categories.size();
  if (n <= depth) return std::nullopt;

  std::size_t hits = 0;
  for (std::size_t i = depth; i < n; ++i) {
    for (std::size_t back = 1; back <= depth; ++back) {
      if (categories[i - back] == categories[i]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n - depth);
}

double random_walk_affinity(std::span<const std::uint64_t> category_sizes, std::size_t depth) {
  if (depth == 0) throw std::invalid_argument("random_walk_affinity: depth must be >= 1");
  // Eq. 4:
  //   numerator   = sum_i A(i)(A(i)-1) * d * prod_{k=2..d} (A - k)
  //   denominator = prod_{k=0..d} (A - k)
  // For depth 1 the empty product makes this Eq. 2.
  double total_apps = 0.0;
  double pair_sum = 0.0;
  for (const auto size : category_sizes) {
    const double a = static_cast<double>(size);
    total_apps += a;
    pair_sum += a * (a - 1.0);
  }
  if (total_apps < 2.0) return 0.0;

  double numerator = pair_sum * static_cast<double>(depth);
  for (std::size_t k = 2; k <= depth; ++k) {
    numerator *= total_apps - static_cast<double>(k);
  }
  double denominator = 1.0;
  for (std::size_t k = 0; k <= depth; ++k) {
    denominator *= total_apps - static_cast<double>(k);
  }
  return numerator / denominator;
}

std::vector<GroupPoint> affinity_by_group(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t depth,
    std::size_t min_samples) {
  std::map<std::size_t, std::vector<double>> groups;
  for (const auto& str : category_strings) {
    const auto value = affinity(str, depth);
    if (value.has_value()) groups[str.size()].push_back(*value);
  }

  std::vector<GroupPoint> points;
  points.reserve(groups.size());
  for (const auto& [comments, values] : groups) {
    if (values.size() < min_samples) continue;
    const stats::Interval ci = stats::normal_ci(values);
    points.push_back(GroupPoint{.comments = comments,
                                .samples = values.size(),
                                .mean = stats::mean(values),
                                .ci_low = ci.lower,
                                .ci_high = ci.upper});
  }
  return points;
}

std::vector<double> per_user_affinity(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t depth) {
  std::vector<double> values;
  values.reserve(category_strings.size());
  for (const auto& str : category_strings) {
    const auto value = affinity(str, depth);
    if (value.has_value()) values.push_back(*value);
  }
  return values;
}

std::vector<double> unique_categories_per_user(
    const std::vector<std::vector<std::uint32_t>>& category_strings) {
  std::vector<double> counts;
  counts.reserve(category_strings.size());
  for (const auto& str : category_strings) {
    if (str.empty()) continue;
    std::vector<std::uint32_t> unique(str.begin(), str.end());
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    counts.push_back(static_cast<double>(unique.size()));
  }
  return counts;
}

std::vector<double> topk_comment_share(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t max_k) {
  // Per user: category frequencies sorted descending; share in top-k is the
  // cumulative fraction. Averaged across users with >= 2 comments.
  std::vector<double> share_sums(max_k, 0.0);
  std::size_t users = 0;
  for (const auto& str : category_strings) {
    if (str.size() < 2) continue;  // paper excludes single-app commenters
    std::map<std::uint32_t, std::size_t> frequency;
    for (const auto category : str) ++frequency[category];
    std::vector<std::size_t> counts;
    counts.reserve(frequency.size());
    for (const auto& [category, count] : frequency) counts.push_back(count);
    std::sort(counts.begin(), counts.end(), std::greater<>());

    double cumulative = 0.0;
    const double total = static_cast<double>(str.size());
    for (std::size_t k = 0; k < max_k; ++k) {
      if (k < counts.size()) cumulative += static_cast<double>(counts[k]);
      share_sums[k] += 100.0 * cumulative / total;
    }
    ++users;
  }
  if (users > 0) {
    for (auto& share : share_sums) share /= static_cast<double>(users);
  }
  return share_sums;
}

}  // namespace appstore::affinity
