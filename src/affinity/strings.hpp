// App strings and category strings (§4.2).
//
// From each user's chronological comment stream the paper derives an "app
// string" by suppressing successive repetitions of the same app
// (a1 a2 a3 a3 a1 a4 -> a1 a2 a3 a1 a4... the paper keeps the *first*
// occurrence of each run: a1a2a3a3a1a4 becomes a1a2a3a4 in their example —
// i.e. successive duplicates collapse AND a later re-comment on an earlier
// app that directly follows is dropped only when adjacent; we implement
// exactly run-suppression, which reproduces their example), then maps each
// app to its category to obtain the "category string".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "events/event_log.hpp"
#include "events/live_log.hpp"
#include "market/events.hpp"

namespace appstore::affinity {

/// Collapses runs of equal adjacent values: a1 a2 a3 a3 a1 a4 -> a1 a2 a3 a1 a4.
[[nodiscard]] std::vector<std::uint32_t> suppress_runs(std::span<const std::uint32_t> sequence);

/// Collapses *all* later duplicates, keeping first occurrences:
/// a1 a2 a3 a3 a1 a4 -> a1 a2 a3 a4 — matching the paper's worked example,
/// where re-comments on an already-commented app are dropped entirely.
[[nodiscard]] std::vector<std::uint32_t> suppress_duplicates(
    std::span<const std::uint32_t> sequence);

/// App string of a chronologically-sorted comment stream: app ids with
/// duplicate comments on the same app suppressed (first occurrence kept).
/// Comments without a rating are skipped (§4: a rating is the download signal).
[[nodiscard]] std::vector<std::uint32_t> app_string(
    std::span<const market::CommentEvent> stream);

/// Same, over a zero-copy per-user view of an indexed comment EventLog —
/// no per-user event vector is materialized.
[[nodiscard]] std::vector<std::uint32_t> app_string(events::UserStreamView stream);

/// Same, over a live frontier-snapshot stream (AppStore::comment_stream).
[[nodiscard]] std::vector<std::uint32_t> app_string(const events::LiveStreamView& stream);

/// Maps an app string to its category string via app→category lookup.
[[nodiscard]] std::vector<std::uint32_t> category_string(
    std::span<const std::uint32_t> apps, std::span<const std::uint32_t> app_category);

}  // namespace appstore::affinity
