#include "affinity/strings.hpp"

#include <algorithm>

namespace appstore::affinity {

std::vector<std::uint32_t> suppress_runs(std::span<const std::uint32_t> sequence) {
  std::vector<std::uint32_t> out;
  out.reserve(sequence.size());
  for (const auto value : sequence) {
    if (out.empty() || out.back() != value) out.push_back(value);
  }
  return out;
}

std::vector<std::uint32_t> suppress_duplicates(std::span<const std::uint32_t> sequence) {
  std::vector<std::uint32_t> out;
  out.reserve(sequence.size());
  for (const auto value : sequence) {
    if (std::find(out.begin(), out.end(), value) == out.end()) out.push_back(value);
  }
  return out;
}

std::vector<std::uint32_t> app_string(std::span<const market::CommentEvent> stream) {
  std::vector<std::uint32_t> apps;
  apps.reserve(stream.size());
  for (const auto& event : stream) {
    if (event.rating == 0) continue;  // unrated comments are weak signals
    apps.push_back(event.app.value);
  }
  return suppress_duplicates(apps);
}

std::vector<std::uint32_t> app_string(events::UserStreamView stream) {
  std::vector<std::uint32_t> apps;
  apps.reserve(stream.size());
  for (const auto event : stream) {
    if (event.rating == 0) continue;  // unrated comments are weak signals
    apps.push_back(event.app);
  }
  return suppress_duplicates(apps);
}

std::vector<std::uint32_t> app_string(const events::LiveStreamView& stream) {
  std::vector<std::uint32_t> apps;
  apps.reserve(stream.size());
  for (const auto event : stream) {
    if (event.rating == 0) continue;  // unrated comments are weak signals
    apps.push_back(event.app);
  }
  return suppress_duplicates(apps);
}

std::vector<std::uint32_t> category_string(std::span<const std::uint32_t> apps,
                                           std::span<const std::uint32_t> app_category) {
  std::vector<std::uint32_t> categories;
  categories.reserve(apps.size());
  for (const auto app : apps) categories.push_back(app_category[app]);
  return categories;
}

}  // namespace appstore::affinity
