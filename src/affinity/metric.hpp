// The temporal affinity metric and its random-walk baseline (§4.2, Eq. 1–4).
//
// Affinity at depth d over a category string c1..cn: the fraction of the
// n-d positions i (d+1..n, 1-based) whose category matches at least one of
// its previous d categories. Depth 1 reduces to Eq. 1; the paper evaluates
// depths 1–3 (Figs. 6, 7).
//
// The base case is a "random wandering" user whose successive choices are
// independent uniformly-random apps: Eq. 2 (depth 1) and Eq. 4 (general d)
// give the probability that a choice shares a category with at least one of
// its previous d, given the store's actual apps-per-category distribution.
// Note on fidelity: Eq. 4 as printed multiplies the pair count by d without
// subtracting multi-match overlaps, i.e. it is a union-bound-style
// approximation that slightly over-estimates the true random-walk affinity
// for d >= 2. We implement the paper's formula verbatim; tests check it
// against a Monte Carlo walk and assert the bias direction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace appstore::affinity {

/// Eq. 3. Returns nullopt when the string is shorter than depth+1 (the
/// metric is undefined: there are no positions with d predecessors).
[[nodiscard]] std::optional<double> affinity(std::span<const std::uint32_t> categories,
                                             std::size_t depth);

/// Eq. 2 / Eq. 4: random-walk affinity for a store whose category i contains
/// category_sizes[i] apps. depth >= 1.
[[nodiscard]] double random_walk_affinity(std::span<const std::uint64_t> category_sizes,
                                          std::size_t depth);

/// Per-user-group aggregation for Fig. 6: users are grouped by the length of
/// their category string ("number of comments"); each group reports the mean
/// affinity and a 95% normal CI. Groups with fewer than `min_samples` users
/// are dropped (the paper uses >10, which also filters comment spammers).
struct GroupPoint {
  std::size_t comments = 0;   ///< category-string length of the group
  std::size_t samples = 0;    ///< users in the group
  double mean = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
};

[[nodiscard]] std::vector<GroupPoint> affinity_by_group(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t depth,
    std::size_t min_samples = 10);

/// Per-user affinity values (for the Fig. 7 CDF); users whose strings are too
/// short for the depth are skipped.
[[nodiscard]] std::vector<double> per_user_affinity(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t depth);

/// Fig. 5(b): number of distinct categories per user (only users with >= 1
/// comment).
[[nodiscard]] std::vector<double> unique_categories_per_user(
    const std::vector<std::vector<std::uint32_t>>& category_strings);

/// Fig. 5(c): average share (0..100%) of a user's comments that fall in their
/// own top-k categories, as a function of k = 1..max_k. Users with fewer than
/// two distinct apps commented are excluded, as in the paper.
[[nodiscard]] std::vector<double> topk_comment_share(
    const std::vector<std::vector<std::uint32_t>>& category_strings, std::size_t max_k);

}  // namespace appstore::affinity
