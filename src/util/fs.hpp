// Filesystem helpers: atomic (write-temp-then-rename) file replacement.
//
// Persistence writers (events/io, crawler/db_io) route their output through
// AtomicFile so a crash — real or injected by the chaos harness — mid-write
// can never leave a torn file under the final name: readers either see the
// previous complete version or the new complete version, nothing in
// between. rename(2) within one directory is atomic on POSIX.
#pragma once

#include <filesystem>

namespace appstore::util {

/// Flushes a file's written bytes to stable storage (fsync(2)). The rename
/// in AtomicFile::commit orders the *name*, not the *bytes*: a durability
/// protocol (the WAL/manifest spine, docs/durability.md) must fsync the
/// staged file before renaming it, and the containing directory after, or a
/// power cut can surface an empty file under the committed name.
/// Throws std::runtime_error on I/O failure.
void fsync_file(const std::filesystem::path& path);

/// Flushes a directory's entries (the rename itself) to stable storage.
void fsync_directory(const std::filesystem::path& path);

/// Stages writes for `path` in a sibling "<path>.tmp" file; commit() moves
/// the temp into place, destruction without commit() deletes it. Single
/// writer per path assumed (concurrent writers would share the temp name).
class AtomicFile {
 public:
  explicit AtomicFile(std::filesystem::path path);

  /// Removes the temp file if commit() was never reached (abandoned write).
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Where the writer must put its bytes until commit().
  [[nodiscard]] const std::filesystem::path& temp_path() const noexcept {
    return temp_path_;
  }

  /// Atomically replaces the final path with the temp file.
  /// Throws std::runtime_error if the rename fails or was already done.
  void commit();

 private:
  std::filesystem::path path_;
  std::filesystem::path temp_path_;
  bool committed_ = false;
};

}  // namespace appstore::util
