// Small string utilities shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::util {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with_ci(std::string_view text, std::string_view prefix) noexcept;

/// Case-insensitive ASCII equality (for HTTP header names).
[[nodiscard]] bool equals_ci(std::string_view a, std::string_view b) noexcept;

[[nodiscard]] std::string to_lower(std::string_view text);

/// Parses a non-negative integer; returns false on any non-digit or overflow.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) noexcept;

/// Parses a double via std::from_chars; returns false on trailing junk.
[[nodiscard]] bool parse_double(std::string_view text, double& out) noexcept;

/// Human-readable count: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_thousands(std::uint64_t value);

/// Compact magnitude: 23'700'000 -> "23.7 M", 651'500 -> "651.5 K".
[[nodiscard]] std::string human_count(double value);

}  // namespace appstore::util
