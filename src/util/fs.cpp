#include "util/fs.hpp"

#include <stdexcept>

namespace appstore::util {

AtomicFile::AtomicFile(std::filesystem::path path)
    : path_(std::move(path)), temp_path_(path_.string() + ".tmp") {}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    std::error_code ignored;
    std::filesystem::remove(temp_path_, ignored);
  }
}

void AtomicFile::commit() {
  if (committed_) throw std::runtime_error("AtomicFile: double commit for " + path_.string());
  std::error_code error;
  std::filesystem::rename(temp_path_, path_, error);
  if (error) {
    throw std::runtime_error("AtomicFile: rename to " + path_.string() +
                             " failed: " + error.message());
  }
  committed_ = true;
}

}  // namespace appstore::util
