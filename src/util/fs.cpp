#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace appstore::util {

namespace {

void fsync_fd_of(const std::filesystem::path& path, int open_flags, const char* what) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path.string() + ": " +
                             std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error(std::string(what) + ": fsync " + path.string() +
                             " failed: " + std::strerror(saved_errno));
  }
}

}  // namespace

void fsync_file(const std::filesystem::path& path) {
  fsync_fd_of(path, O_RDONLY, "fsync_file");
}

void fsync_directory(const std::filesystem::path& path) {
  fsync_fd_of(path, O_RDONLY | O_DIRECTORY, "fsync_directory");
}

AtomicFile::AtomicFile(std::filesystem::path path)
    : path_(std::move(path)), temp_path_(path_.string() + ".tmp") {}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    std::error_code ignored;
    std::filesystem::remove(temp_path_, ignored);
  }
}

void AtomicFile::commit() {
  if (committed_) throw std::runtime_error("AtomicFile: double commit for " + path_.string());
  std::error_code error;
  std::filesystem::rename(temp_path_, path_, error);
  if (error) {
    throw std::runtime_error("AtomicFile: rename to " + path_.string() +
                             " failed: " + error.message());
  }
  committed_ = true;
}

}  // namespace appstore::util
