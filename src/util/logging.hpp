// Minimal leveled logger.
//
// The library itself is quiet by default (Level::kWarn); examples and
// benches raise the level via --verbose. Logging is synchronous and
// thread-safe (a single mutex) — adequate for a measurement/simulation
// library where logging is never on the hot path.
#pragma once

#include <string_view>

#include "util/format.hpp"

namespace appstore::util {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(Level level) noexcept;
[[nodiscard]] Level log_level() noexcept;

/// Core sink: writes "LEVEL component: message" to stderr.
void log_message(Level level, std::string_view component, std::string_view message);

template <typename... Args>
void log_debug(std::string_view component, std::string_view fmt, Args&&... args) {
  if (log_level() <= Level::kDebug) {
    log_message(Level::kDebug, component, format(fmt, args...));
  }
}

template <typename... Args>
void log_info(std::string_view component, std::string_view fmt, Args&&... args) {
  if (log_level() <= Level::kInfo) {
    log_message(Level::kInfo, component, format(fmt, args...));
  }
}

template <typename... Args>
void log_warn(std::string_view component, std::string_view fmt, Args&&... args) {
  if (log_level() <= Level::kWarn) {
    log_message(Level::kWarn, component, format(fmt, args...));
  }
}

template <typename... Args>
void log_error(std::string_view component, std::string_view fmt, Args&&... args) {
  if (log_level() <= Level::kError) {
    log_message(Level::kError, component, format(fmt, args...));
  }
}

}  // namespace appstore::util
