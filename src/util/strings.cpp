#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/format.hpp"


namespace appstore::util {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with_ci(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && equals_ci(text.substr(0, prefix.size()), prefix);
}

bool equals_ci(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool parse_u64(std::string_view text, std::uint64_t& out) noexcept {
  if (text.empty()) return false;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view text, double& out) noexcept {
  if (text.empty()) return false;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string human_count(double value) {
  const double magnitude = std::fabs(value);
  if (magnitude >= 1e9) return util::format("{:.1f} B", value / 1e9);
  if (magnitude >= 1e6) return util::format("{:.1f} M", value / 1e6);
  if (magnitude >= 1e3) return util::format("{:.1f} K", value / 1e3);
  return util::format("{:.0f}", value);
}

}  // namespace appstore::util
