#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace appstore::util {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_sink_mutex;

[[nodiscard]] const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(Level level, std::string_view component, std::string_view message) {
  const std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "%-5s %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace appstore::util
