#include "util/format.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace appstore::util::detail {

Spec parse_spec(std::string_view text) {
  Spec spec;
  if (text.empty()) return spec;
  if (text.front() != ':') {
    throw std::invalid_argument("format: bad spec '" + std::string(text) + "'");
  }
  text.remove_prefix(1);

  // [fill]align
  if (text.size() >= 2 && (text[1] == '<' || text[1] == '>')) {
    spec.fill = text[0];
    spec.align = text[1];
    text.remove_prefix(2);
  } else if (!text.empty() && (text[0] == '<' || text[0] == '>')) {
    spec.align = text[0];
    text.remove_prefix(1);
  }

  // width
  while (!text.empty() && std::isdigit(static_cast<unsigned char>(text[0]))) {
    spec.width = spec.width * 10 + (text[0] - '0');
    text.remove_prefix(1);
  }

  // .precision
  if (!text.empty() && text[0] == '.') {
    text.remove_prefix(1);
    spec.precision = 0;
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
      throw std::invalid_argument("format: missing precision digits");
    }
    while (!text.empty() && std::isdigit(static_cast<unsigned char>(text[0]))) {
      spec.precision = spec.precision * 10 + (text[0] - '0');
      text.remove_prefix(1);
    }
  }

  // type
  if (!text.empty()) {
    const char t = text[0];
    if (t != 'd' && t != 'f' && t != 'g' && t != 'e' && t != 'x' && t != 's') {
      throw std::invalid_argument(std::string("format: unknown type '") + t + "'");
    }
    spec.type = t;
    text.remove_prefix(1);
  }
  if (!text.empty()) {
    throw std::invalid_argument("format: trailing spec characters");
  }
  return spec;
}

std::string apply_padding(std::string value, const Spec& spec, bool numeric) {
  const auto width = static_cast<std::size_t>(spec.width);
  if (value.size() >= width) return value;
  const std::size_t pad = width - value.size();
  char align = spec.align;
  if (align == 0) align = numeric ? '>' : '<';
  if (align == '>') {
    return std::string(pad, spec.fill) + value;
  }
  return value + std::string(pad, spec.fill);
}

std::string format_double(double value, const Spec& spec) {
  char pattern[16];
  const char type = spec.type == 0 || spec.type == 'd' || spec.type == 's' ? 'g' : spec.type;
  const int precision = spec.precision >= 0 ? spec.precision : (type == 'g' ? 6 : 6);
  std::snprintf(pattern, sizeof pattern, "%%.%d%c", precision, type);
  char buffer[512];
  const int written = std::snprintf(buffer, sizeof buffer, pattern, value);
  return apply_padding(std::string(buffer, static_cast<std::size_t>(written)), spec, true);
}

std::string format_signed(long long value, const Spec& spec) {
  if (spec.type == 'f' || spec.type == 'g' || spec.type == 'e') {
    return format_double(static_cast<double>(value), spec);
  }
  char buffer[32];
  const int written =
      spec.type == 'x' ? std::snprintf(buffer, sizeof buffer, "%llx", value)
                       : std::snprintf(buffer, sizeof buffer, "%lld", value);
  return apply_padding(std::string(buffer, static_cast<std::size_t>(written)), spec, true);
}

std::string format_unsigned(unsigned long long value, const Spec& spec) {
  if (spec.type == 'f' || spec.type == 'g' || spec.type == 'e') {
    return format_double(static_cast<double>(value), spec);
  }
  char buffer[32];
  const int written =
      spec.type == 'x' ? std::snprintf(buffer, sizeof buffer, "%llx", value)
                       : std::snprintf(buffer, sizeof buffer, "%llu", value);
  return apply_padding(std::string(buffer, static_cast<std::size_t>(written)), spec, true);
}

std::string format_string(std::string_view value, const Spec& spec) {
  std::string out(value);
  if (spec.precision >= 0 && out.size() > static_cast<std::size_t>(spec.precision)) {
    out.resize(static_cast<std::size_t>(spec.precision));
  }
  return apply_padding(std::move(out), spec, false);
}

void format_impl(std::string& out, std::string_view fmt) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    const char c = fmt[i];
    if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out.push_back('{');
      i += 2;
      continue;
    }
    if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      i += 2;
      continue;
    }
    out.push_back(c);
    ++i;
  }
}

}  // namespace appstore::util::detail
