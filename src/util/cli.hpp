// Tiny declarative command-line flag parser used by every example and bench.
//
//   util::Cli cli("bench_fig19_cache", "LRU cache hit ratio under 3 models");
//   auto seed  = cli.u64("seed", 13, "PRNG seed");
//   auto scale = cli.f64("scale", 0.1, "fraction of paper-scale workload");
//   cli.parse(argc, argv);         // exits on --help or bad input
//   run(*seed, *scale);
//
// Flags are "--name=value" or "--name value"; bools accept bare "--name".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register flags; the returned shared_ptr holds the parsed value.
  [[nodiscard]] std::shared_ptr<std::uint64_t> u64(std::string name, std::uint64_t default_value,
                                                   std::string help);
  [[nodiscard]] std::shared_ptr<double> f64(std::string name, double default_value,
                                            std::string help);
  [[nodiscard]] std::shared_ptr<std::string> str(std::string name, std::string default_value,
                                                 std::string help);
  [[nodiscard]] std::shared_ptr<bool> flag(std::string name, std::string help);

  /// Parses argv; on --help prints usage and exits(0); on errors prints the
  /// problem and exits(2).
  void parse(int argc, const char* const* argv);

  /// Testable core: returns empty string on success, error text on failure.
  /// Recognizing --help sets help_requested() without consuming other flags.
  [[nodiscard]] std::string try_parse(std::vector<std::string_view> args);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kU64, kF64, kStr, kBool };

  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    std::shared_ptr<std::uint64_t> u64_value;
    std::shared_ptr<double> f64_value;
    std::shared_ptr<std::string> str_value;
    std::shared_ptr<bool> bool_value;
    std::string default_text;
  };

  [[nodiscard]] Option* find(std::string_view name) noexcept;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  bool help_requested_ = false;
};

}  // namespace appstore::util
