// CSV/TSV writing and reading.
//
// Benches emit every figure's series as a CSV under results/ so plots can be
// regenerated outside the binary; the reader exists so tests can round-trip
// and so saved crawl databases can be reloaded.
#pragma once

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::util {

/// Streaming CSV writer. Quotes fields only when needed (comma, quote,
/// newline). Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path, char delimiter = ',');

  /// Writes one row; each field is escaped independently.
  void write_row(std::span<const std::string> fields);
  void write_row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats arithmetic values with std::to_string semantics.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    write_row(cells);
  }

  void flush();

 private:
  template <typename T>
  [[nodiscard]] static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      return std::string(std::string_view(value));
    } else if constexpr (std::is_floating_point_v<T>) {
      char buffer[64];
      const int written = std::snprintf(buffer, sizeof buffer, "%.10g", static_cast<double>(value));
      return std::string(buffer, static_cast<std::size_t>(written));
    } else {
      return std::to_string(value);
    }
  }

  [[nodiscard]] std::string escape(std::string_view field) const;

  std::ofstream out_;
  char delimiter_;
};

/// Fully-parsed CSV: header + rows of strings. Handles quoted fields with
/// embedded delimiters/quotes/newlines.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos.
  [[nodiscard]] std::size_t column(std::string_view name) const noexcept;
};

[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path, char delimiter = ',');
[[nodiscard]] CsvTable parse_csv(std::string_view text, char delimiter = ',');

}  // namespace appstore::util
