// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through util::Rng (xoshiro256**,
// seeded via splitmix64) so that every experiment is bit-reproducible from a
// single --seed value. The generator satisfies the C++ UniformRandomBitGenerator
// concept and can therefore be used with <random> distributions, but the
// member helpers below are preferred: they are faster and keep behaviour
// identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

namespace appstore::util {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256** state. Public because tests and hashing utilities reuse it.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit state.
/// Deterministic across platforms; not cryptographically secure (not needed).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state from a single 64-bit value via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9d0f00dULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits for full double precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator's consumption pattern simple and reproducible).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Poisson with the given mean (Knuth for small mean, normal approx above 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Geometric number of failures before first success, p in (0, 1].
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Uniformly pick one element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> values) noexcept {
    return values[static_cast<std::size_t>(below(values.size()))];
  }

  /// Derive an independent child generator (for per-entity streams).
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

namespace rng {

/// Derives an independent child seed for shard/entity `shard_id` from a base
/// seed, via two decorrelated splitmix64 mixes. Pure function: the same
/// (seed, shard_id) always yields the same child seed, so parallel code can
/// hand every shard its own reproducible stream regardless of how shards are
/// scheduled across threads.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t shard_id) noexcept {
  std::uint64_t state = seed;
  const std::uint64_t mixed_seed = splitmix64(state);
  state ^= (shard_id + 1) * 0xbf58476d1ce4e5b9ULL;
  return mixed_seed ^ splitmix64(state);
}

/// Ready-to-use generator for shard `shard_id` (see derive_seed).
[[nodiscard]] constexpr Rng derive(std::uint64_t seed, std::uint64_t shard_id) noexcept {
  return Rng{derive_seed(seed, shard_id)};
}

}  // namespace rng

/// Stable 64-bit hash of a string (FNV-1a); used to derive per-entity seeds.
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

/// Combine two 64-bit values into one seed (boost::hash_combine style).
[[nodiscard]] constexpr std::uint64_t combine_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a;
  s ^= b + 0x9e3779b97f4a7c15ULL + (s << 12) + (s >> 4);
  return s;
}

}  // namespace appstore::util
