// Minimal std::format-like string formatting.
//
// The toolchain this library targets (GCC 12 / libstdc++) does not ship
// <format>, so we provide the small subset the library needs:
//
//   format("{} of {}", 3, 7)            -> "3 of 7"
//   format("{:.2f}", 3.14159)           -> "3.14"
//   format("{:>8}", "hi")               -> "      hi"
//   format("{:<6}x", 42)                -> "42    x"
//   format("{:g}", 0.00012)             -> "0.00012"
//   "{{" and "}}"                        -> literal braces
//
// Spec grammar (subset): "{" [":" [fill? align] [width] ["." precision]
// [type] ] "}" with align in {<, >}, type in {d, f, g, e, x, s}. Arguments
// are consumed left to right; excess "{}" render as "{}". Unknown spec
// characters throw std::invalid_argument so typos fail loudly in tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace appstore::util {

namespace detail {

struct Spec {
  char fill = ' ';
  char align = 0;       // 0 = default (right for numbers, left for strings)
  int width = 0;
  int precision = -1;   // -1 = unspecified
  char type = 0;        // 0 = default
};

[[nodiscard]] Spec parse_spec(std::string_view text);
[[nodiscard]] std::string apply_padding(std::string value, const Spec& spec, bool numeric);

[[nodiscard]] std::string format_double(double value, const Spec& spec);
[[nodiscard]] std::string format_signed(long long value, const Spec& spec);
[[nodiscard]] std::string format_unsigned(unsigned long long value, const Spec& spec);
[[nodiscard]] std::string format_string(std::string_view value, const Spec& spec);

template <typename T>
[[nodiscard]] std::string format_value(const T& value, const Spec& spec) {
  if constexpr (std::is_same_v<T, bool>) {
    return format_string(value ? "true" : "false", spec);
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(static_cast<double>(value), spec);
  } else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    return format_signed(static_cast<long long>(value), spec);
  } else if constexpr (std::is_integral_v<T>) {
    return format_unsigned(static_cast<unsigned long long>(value), spec);
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    return format_string(std::string_view(value), spec);
  } else {
    static_assert(std::is_arithmetic_v<T> || std::is_convertible_v<T, std::string_view>,
                  "appstore::util::format: unsupported argument type");
    return {};
  }
}

/// Appends `fmt` to `out`, replacing the first unformatted "{...}" with the
/// head argument, then recursing on the tail.
void format_impl(std::string& out, std::string_view fmt);

template <typename T, typename... Rest>
void format_impl(std::string& out, std::string_view fmt, const T& first, const Rest&... rest) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        i += 2;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        out.append(fmt.substr(i));
        return;
      }
      const Spec spec = parse_spec(fmt.substr(i + 1, close - i - 1));
      out += format_value(first, spec);
      format_impl(out, fmt.substr(close + 1), rest...);
      return;
    }
    if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      i += 2;
      continue;
    }
    out.push_back(c);
    ++i;
  }
}

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::string out;
  out.reserve(fmt.size() + 16 * sizeof...(args));
  detail::format_impl(out, fmt, args...);
  return out;
}

}  // namespace appstore::util
