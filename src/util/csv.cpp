#include "util/csv.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace appstore::util {

CsvWriter::CsvWriter(const std::filesystem::path& path, char delimiter)
    : delimiter_(delimiter) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

void CsvWriter::write_row(std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_.put(delimiter_);
    out_ << escape(fields[i]);
  }
  out_.put('\n');
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::size_t i = 0;
  for (const auto field : fields) {
    if (i++ != 0) out_.put(delimiter_);
    out_ << escape(field);
  }
  out_.put('\n');
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(std::string_view field) const {
  const bool needs_quotes = field.find_first_of("\"\r\n") != std::string_view::npos ||
                            field.find(delimiter_) != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::size_t CsvTable::column(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

namespace {

/// State-machine CSV parser (RFC 4180 subset).
std::vector<std::vector<std::string>> parse_rows(std::string_view text, char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
    row_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    row_started = true;
    if (c == '"' && cell.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      end_cell();
    } else if (c == '\n') {
      end_row();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  if (row_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace

CsvTable parse_csv(std::string_view text, char delimiter) {
  CsvTable table;
  auto rows = parse_rows(text, delimiter);
  if (rows.empty()) return table;
  table.header = std::move(rows.front());
  table.rows.assign(std::make_move_iterator(rows.begin() + 1),
                    std::make_move_iterator(rows.end()));
  return table;
}

CsvTable read_csv(const std::filesystem::path& path, char delimiter) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), delimiter);
}

}  // namespace appstore::util
