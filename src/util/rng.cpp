#include "util/rng.hpp"

#include <cmath>
#include <string_view>

namespace appstore::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double lambda) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace appstore::util
