#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/format.hpp"


#include "util/strings.hpp"

namespace appstore::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::shared_ptr<std::uint64_t> Cli::u64(std::string name, std::uint64_t default_value,
                                        std::string help) {
  auto value = std::make_shared<std::uint64_t>(default_value);
  options_.push_back(Option{.name = std::move(name),
                            .help = std::move(help),
                            .kind = Kind::kU64,
                            .u64_value = value,
                            .f64_value = {},
                            .str_value = {},
                            .bool_value = {},
                            .default_text = std::to_string(default_value)});
  return value;
}

std::shared_ptr<double> Cli::f64(std::string name, double default_value, std::string help) {
  auto value = std::make_shared<double>(default_value);
  options_.push_back(Option{.name = std::move(name),
                            .help = std::move(help),
                            .kind = Kind::kF64,
                            .u64_value = {},
                            .f64_value = value,
                            .str_value = {},
                            .bool_value = {},
                            .default_text = util::format("{:g}", default_value)});
  return value;
}

std::shared_ptr<std::string> Cli::str(std::string name, std::string default_value,
                                      std::string help) {
  auto value = std::make_shared<std::string>(default_value);
  options_.push_back(Option{.name = std::move(name),
                            .help = std::move(help),
                            .kind = Kind::kStr,
                            .u64_value = {},
                            .f64_value = {},
                            .str_value = value,
                            .bool_value = {},
                            .default_text = std::move(default_value)});
  return value;
}

std::shared_ptr<bool> Cli::flag(std::string name, std::string help) {
  auto value = std::make_shared<bool>(false);
  options_.push_back(Option{.name = std::move(name),
                            .help = std::move(help),
                            .kind = Kind::kBool,
                            .u64_value = {},
                            .f64_value = {},
                            .str_value = {},
                            .bool_value = value,
                            .default_text = "false"});
  return value;
}

Cli::Option* Cli::find(std::string_view name) noexcept {
  for (auto& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

std::string Cli::try_parse(std::vector<std::string_view> args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return {};
    }
    if (!arg.starts_with("--")) {
      return util::format("unexpected positional argument '{}'", arg);
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Option* option = find(name);
    if (option == nullptr) {
      return util::format("unknown flag '--{}'", name);
    }
    if (option->kind == Kind::kBool) {
      if (has_value) {
        if (value == "true" || value == "1") {
          *option->bool_value = true;
        } else if (value == "false" || value == "0") {
          *option->bool_value = false;
        } else {
          return util::format("bad boolean for --{}: '{}'", name, value);
        }
      } else {
        *option->bool_value = true;
      }
      continue;
    }
    if (!has_value) {
      if (i + 1 >= args.size()) {
        return util::format("flag --{} needs a value", name);
      }
      value = args[++i];
    }
    switch (option->kind) {
      case Kind::kU64: {
        std::uint64_t parsed = 0;
        if (!parse_u64(value, parsed)) {
          return util::format("bad integer for --{}: '{}'", name, value);
        }
        *option->u64_value = parsed;
        break;
      }
      case Kind::kF64: {
        double parsed = 0;
        if (!parse_double(value, parsed)) {
          return util::format("bad number for --{}: '{}'", name, value);
        }
        *option->f64_value = parsed;
        break;
      }
      case Kind::kStr:
        *option->str_value = std::string(value);
        break;
      case Kind::kBool:
        break;  // handled above
    }
  }
  return {};
}

void Cli::parse(int argc, const char* const* argv) {
  std::vector<std::string_view> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const std::string error = try_parse(std::move(args));
  if (help_requested_) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), error.c_str(), usage().c_str());
    std::exit(2);
  }
}

std::string Cli::usage() const {
  std::string out = util::format("{} — {}\n\nFlags:\n", program_, description_);
  for (const auto& option : options_) {
    out += util::format("  --{:<18} {} (default: {})\n", option.name, option.help,
                       option.default_text);
  }
  out += "  --help               show this message\n";
  return out;
}

}  // namespace appstore::util
