// parallel_for / parallel_map / parallel_reduce over static shards.
//
// Determinism contract (see docs/performance.md):
//   * Shard boundaries are a pure function of (count, grain): shard s covers
//     [s*grain, min((s+1)*grain, count)). Threads only decide which CPU runs
//     a shard, never what the shard contains.
//   * parallel_for/parallel_map write per-index results, so their output is
//     bit-identical for every thread count, including 1.
//   * parallel_reduce combines shard partials in ascending shard order, so
//     its result is bit-identical across thread counts for a fixed grain.
//     An automatic grain (Options::grain == 0) is derived from the thread
//     count — pass an explicit grain when a floating-point reduction must be
//     invariant across thread counts.
//
// Per-shard randomness: derive one util::Rng per logical item (user,
// replicate, grid point) with util::rng::derive(seed, item_id) — never share
// one generator across shards.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/registry.hpp"
#include "par/pool.hpp"

namespace appstore::par {

struct Options {
  /// Max threads participating (including the caller); 0 = hardware_concurrency.
  std::size_t threads = 0;
  /// Items per shard; 0 derives ~8 shards per thread from `threads`.
  std::uint64_t grain = 0;
  /// Pool to run on; nullptr = the lazily-started global pool.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink: records par_tasks_total (one per parallel call),
  /// par_shards_total and the par_pool_queue_depth gauge (backlog at dispatch).
  obs::Registry* metrics = nullptr;
};

/// The static decomposition of [0, count) a parallel call will use.
struct ShardPlan {
  std::uint64_t grain = 1;
  std::size_t shard_count = 0;
};

/// Pure function of (count, options.threads, options.grain); exposed so
/// callers (and parallel_reduce) can size shard-indexed buffers up front.
[[nodiscard]] ShardPlan plan_shards(std::uint64_t count, const Options& options) noexcept;

/// Type-erased core: runs body(begin, end, shard) over the static shards of
/// [0, count). All templates below forward to this.
void for_shards(std::uint64_t count, const Options& options,
                const std::function<void(std::uint64_t, std::uint64_t, std::size_t)>& body);

/// Element-wise parallel loop: fn(i) for i in [0, count).
template <typename Fn>
void parallel_for(std::uint64_t count, const Options& options, Fn&& fn) {
  for_shards(count, options,
             [&fn](std::uint64_t begin, std::uint64_t end, std::size_t /*shard*/) {
               for (std::uint64_t i = begin; i < end; ++i) fn(i);
             });
}

/// result[i] = fn(i). T must be default-constructible; results land in
/// per-index slots, so the output is thread-count-invariant.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::uint64_t count, const Options& options,
                                          Fn&& fn) {
  std::vector<T> result(count);
  for_shards(count, options,
             [&](std::uint64_t begin, std::uint64_t end, std::size_t /*shard*/) {
               for (std::uint64_t i = begin; i < end; ++i) result[i] = fn(i);
             });
  return result;
}

/// Shard-local fold then an ordered serial combine:
///   partial[s] = combine(...combine(identity, map(i))...) over shard s
///   result     = combine(...combine(identity, partial[0])..., partial[n-1])
/// Deterministic for a fixed grain even when combine is not associative in
/// floating point.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::uint64_t count, T identity, const Options& options,
                                MapFn&& map, CombineFn&& combine) {
  const ShardPlan plan = plan_shards(count, options);
  std::vector<T> partials(plan.shard_count, identity);
  for_shards(count, options,
             [&](std::uint64_t begin, std::uint64_t end, std::size_t shard) {
               T acc = identity;
               for (std::uint64_t i = begin; i < end; ++i) acc = combine(acc, map(i));
               partials[shard] = acc;
             });
  T result = identity;
  for (const T& partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace appstore::par
