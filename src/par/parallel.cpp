#include "par/parallel.hpp"

#include <algorithm>

namespace appstore::par {

ShardPlan plan_shards(std::uint64_t count, const Options& options) noexcept {
  ShardPlan plan;
  if (count == 0) return plan;
  const auto threads = static_cast<std::uint64_t>(resolve_threads(options.threads));
  plan.grain = options.grain != 0 ? options.grain : std::max<std::uint64_t>(1, count / (threads * 8));
  plan.shard_count = static_cast<std::size_t>((count + plan.grain - 1) / plan.grain);
  return plan;
}

void for_shards(std::uint64_t count, const Options& options,
                const std::function<void(std::uint64_t, std::uint64_t, std::size_t)>& body) {
  if (count == 0) return;
  const ShardPlan plan = plan_shards(count, options);
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_pool();

  if (options.metrics != nullptr) {
    obs::Registry& registry = *options.metrics;
    registry.counter("par_tasks_total").inc();
    registry.counter("par_shards_total").inc(plan.shard_count);
    // Backlog at dispatch: every shard but the ones the participants grab
    // immediately starts queued. A cheap, honest load signal.
    registry.gauge("par_pool_queue_depth")
        .set(static_cast<double>(plan.shard_count > pool.thread_count()
                                     ? plan.shard_count - pool.thread_count()
                                     : 0));
  }

  pool.for_shards(
      plan.shard_count,
      [&](std::size_t shard) {
        const std::uint64_t begin = static_cast<std::uint64_t>(shard) * plan.grain;
        const std::uint64_t end = std::min<std::uint64_t>(begin + plan.grain, count);
        body(begin, end, shard);
      },
      options.threads);

  if (options.metrics != nullptr) options.metrics->gauge("par_pool_queue_depth").set(0.0);
}

}  // namespace appstore::par
