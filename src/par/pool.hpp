// Deterministic parallel execution: a small blocking thread pool.
//
// The pool runs *data-parallel jobs only*: for_shards(n, fn) executes
// fn(shard) for every shard in [0, n), using the calling thread plus the
// pool's workers, and returns when all shards finished. There is no work
// stealing and no fire-and-forget submission — shard contents are fixed up
// front, only the assignment of shards to threads varies, so any computation
// whose per-shard results are written to shard-indexed slots is bit-identical
// regardless of thread count or scheduling.
//
// Nested calls are safe: for_shards invoked from inside a pool worker runs
// all shards inline on that worker (serial), so a parallelized library
// routine may freely call another one without deadlocking the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace appstore::par {

/// Maps the conventional "0 = all cores" thread-count field of the Options
/// structs to a concrete count (always >= 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t threads) noexcept;

/// True on a ThreadPool worker thread (used to run nested jobs inline).
[[nodiscard]] bool in_pool_worker() noexcept;

class ThreadPool {
 public:
  /// `threads` counts *participants*: the pool spawns threads-1 workers and
  /// the thread calling for_shards contributes as the last participant.
  /// 0 = hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum participants of a job (workers + the calling thread).
  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(shard) for every shard in [0, shard_count); blocks until all
  /// shards completed. At most `max_participants` threads (including the
  /// caller) execute shards; 0 = no limit. The first exception thrown by fn
  /// is rethrown on the calling thread after the job drains.
  void for_shards(std::size_t shard_count, const std::function<void(std::size_t)>& fn,
                  std::size_t max_participants = 0);

  /// Shards of the currently-running job not yet claimed by any thread
  /// (0 when idle). Snapshot for the par_pool_queue_depth gauge.
  [[nodiscard]] std::size_t queued_shards() const noexcept;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t shard_count = 0;
    std::size_t max_participants = 0;  ///< adopters cap (callers + workers)
    std::size_t adopters = 0;          ///< guarded by pool mutex
    std::atomic<std::size_t> next{0};  ///< ticket: next unclaimed shard
    std::atomic<std::size_t> done{0};  ///< completed shards
    std::exception_ptr error;          ///< first failure, guarded by pool mutex
  };

  void worker_loop();
  /// Claims and executes shards of `job` until the tickets run out.
  void drain(const std::shared_ptr<Job>& job);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: new job or shutdown
  std::condition_variable done_cv_;  ///< caller: job completion
  std::shared_ptr<Job> job_;         ///< current job (null when idle)
  std::uint64_t generation_ = 0;     ///< bumped per job so workers adopt once
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Lazily-started process-global pool sized to hardware_concurrency.
/// Library routines use it when no pool is injected; tests inject private
/// pools to exercise specific sizes.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace appstore::par
