#include "par/pool.hpp"

namespace appstore::par {

namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool in_pool_worker() noexcept { return t_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t participants = resolve_threads(threads);
  workers_.reserve(participants - 1);
  for (std::size_t i = 0; i + 1 < participants; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drain(const std::shared_ptr<Job>& job) {
  for (;;) {
    const std::size_t shard = job->next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job->shard_count) break;
    try {
      (*job->fn)(shard);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!job->error) job->error = std::current_exception();
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->shard_count) {
      // Last shard: wake the caller. The lock orders the notify against the
      // caller's predicate check.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
      if (job_->max_participants != 0 && job_->adopters >= job_->max_participants) {
        continue;  // job is at its participant cap; wait for the next one
      }
      ++job_->adopters;
      job = job_;  // shared_ptr keeps the job alive past the caller's return
    }
    drain(job);
  }
}

void ThreadPool::for_shards(std::size_t shard_count,
                            const std::function<void(std::size_t)>& fn,
                            std::size_t max_participants) {
  if (shard_count == 0) return;
  // Inline paths: single shard, no workers, capped to one participant, or a
  // nested call from inside a worker (enqueueing from a worker and blocking
  // on the result could deadlock a fully-busy pool).
  if (shard_count == 1 || workers_.empty() || max_participants == 1 || in_pool_worker()) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) fn(shard);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->shard_count = shard_count;
  job->max_participants = max_participants;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->adopters = 1;  // the caller
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  drain(job);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->shard_count;
    });
    job_ = nullptr;
    if (job->error) {
      std::exception_ptr error = job->error;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

std::size_t ThreadPool::queued_shards() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job_ == nullptr) return 0;
  const std::size_t next = job_->next.load(std::memory_order_relaxed);
  return next >= job_->shard_count ? 0 : job_->shard_count - next;
}

ThreadPool& global_pool() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace appstore::par
