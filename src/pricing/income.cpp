#include "pricing/income.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/correlation.hpp"
#include "stats/histogram.hpp"

namespace appstore::pricing {

double app_revenue_dollars(const market::AppStore& store, market::AppId app) {
  if (store.app(app).pricing != market::Pricing::kPaid) return 0.0;
  return static_cast<double>(store.downloads_of(app)) * store.average_price_dollars(app);
}

std::vector<DeveloperIncome> developer_incomes(const market::AppStore& store) {
  std::vector<DeveloperIncome> incomes(store.developers().size());
  for (std::size_t d = 0; d < incomes.size(); ++d) {
    incomes[d].developer = market::DeveloperId{static_cast<std::uint32_t>(d)};
  }
  for (const auto& app : store.apps()) {
    auto& entry = incomes[app.developer.index()];
    if (app.pricing == market::Pricing::kPaid) {
      ++entry.paid_apps;
      entry.income_dollars += app_revenue_dollars(store, app.id);
    } else {
      ++entry.free_apps;
    }
  }
  // Keep only developers with at least one paid app — income from paid apps
  // is undefined for pure-free developers.
  std::erase_if(incomes, [](const DeveloperIncome& entry) { return entry.paid_apps == 0; });
  return incomes;
}

double income_app_count_correlation(const std::vector<DeveloperIncome>& incomes) {
  std::vector<double> apps;
  std::vector<double> income;
  apps.reserve(incomes.size());
  income.reserve(incomes.size());
  for (const auto& entry : incomes) {
    apps.push_back(static_cast<double>(entry.paid_apps));
    income.push_back(entry.income_dollars);
  }
  return stats::pearson(apps, income);
}

std::vector<CategoryRevenue> category_revenue_breakdown(const market::AppStore& store) {
  const std::size_t categories = store.categories().size();
  std::vector<double> revenue(categories, 0.0);
  std::vector<double> apps(categories, 0.0);
  std::vector<std::set<std::uint32_t>> developers(categories);

  double total_revenue = 0.0;
  double total_apps = 0.0;
  for (const auto& app : store.apps()) {
    if (app.pricing != market::Pricing::kPaid) continue;
    const double r = app_revenue_dollars(store, app.id);
    revenue[app.category.index()] += r;
    apps[app.category.index()] += 1.0;
    developers[app.category.index()].insert(app.developer.value);
    total_revenue += r;
    total_apps += 1.0;
  }
  std::set<std::uint32_t> all_developers;
  for (const auto& per_category : developers) {
    all_developers.insert(per_category.begin(), per_category.end());
  }

  std::vector<CategoryRevenue> breakdown;
  breakdown.reserve(categories);
  for (std::size_t c = 0; c < categories; ++c) {
    CategoryRevenue row;
    row.category = market::CategoryId{static_cast<std::uint32_t>(c)};
    row.name = store.categories()[c].name;
    if (total_revenue > 0.0) row.revenue_percent = 100.0 * revenue[c] / total_revenue;
    if (total_apps > 0.0) row.apps_percent = 100.0 * apps[c] / total_apps;
    if (!all_developers.empty()) {
      row.developers_percent = 100.0 * static_cast<double>(developers[c].size()) /
                               static_cast<double>(all_developers.size());
    }
    breakdown.push_back(std::move(row));
  }
  std::sort(breakdown.begin(), breakdown.end(),
            [](const CategoryRevenue& a, const CategoryRevenue& b) {
              return a.revenue_percent > b.revenue_percent;
            });
  return breakdown;
}

PricePopularity price_popularity(const market::AppStore& store) {
  PricePopularity result;
  for (const auto& app : store.apps()) {
    if (app.pricing != market::Pricing::kPaid) continue;
    result.prices.push_back(store.average_price_dollars(app.id));
    result.downloads.push_back(static_cast<double>(store.downloads_of(app.id)));
  }
  if (result.prices.size() < 2) return result;
  result.price_download_correlation = stats::pearson(result.prices, result.downloads);

  // Price vs number of apps: one-dollar bins, correlate bin center with the
  // number of apps in the bin (Fig. 12, lower panel).
  stats::LinearHistogram bins(0.0, 50.0, 1.0);
  for (const auto price : result.prices) bins.add(price);
  std::vector<double> centers;
  std::vector<double> counts;
  for (const auto& bin : bins.bins()) {
    centers.push_back(bin.center());
    counts.push_back(static_cast<double>(bin.count));
  }
  result.price_app_count_correlation = stats::pearson(centers, counts);
  return result;
}

}  // namespace appstore::pricing
