// Developer strategy analysis (§6.3, Fig. 16).
//
// How many apps does each developer offer per pricing model, how many
// categories do they focus on, and which pricing strategy (free-only,
// paid-only, mixed) do they follow.
#pragma once

#include <cstdint>
#include <vector>

#include "market/store.hpp"

namespace appstore::pricing {

/// Apps per developer, restricted to one pricing model; developers with no
/// apps of that pricing are excluded (Fig. 16a plots free and paid curves
/// over their respective developer populations).
[[nodiscard]] std::vector<double> apps_per_developer(const market::AppStore& store,
                                                     market::Pricing pricing);

/// Distinct categories per developer, restricted to one pricing model
/// (Fig. 16b).
[[nodiscard]] std::vector<double> categories_per_developer(const market::AppStore& store,
                                                           market::Pricing pricing);

/// §6.3 headline: shares of developers that are free-only / paid-only / both.
struct StrategyShares {
  double free_only = 0.0;
  double paid_only = 0.0;
  double both = 0.0;
  std::size_t developers = 0;
};

[[nodiscard]] StrategyShares strategy_shares(const market::AppStore& store);

}  // namespace appstore::pricing
