// Developer income from paid apps (§6.2).
//
// Income of a paid app = total downloads (purchases) × average observed
// price; a developer's income is the sum over their paid apps. As in the
// paper, the store commission (SlideMe: 5%) is ignored — developers are
// credited the full price.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "market/store.hpp"

namespace appstore::pricing {

struct DeveloperIncome {
  market::DeveloperId developer;
  double income_dollars = 0.0;
  std::uint32_t paid_apps = 0;
  std::uint32_t free_apps = 0;
};

/// Income for every developer that offers at least one paid app.
[[nodiscard]] std::vector<DeveloperIncome> developer_incomes(const market::AppStore& store);

/// Revenue of a single paid app (downloads × average price).
[[nodiscard]] double app_revenue_dollars(const market::AppStore& store, market::AppId app);

/// Pearson correlation between the number of paid apps a developer offers
/// and their total income (Fig. 14: ≈0.008 — quality beats quantity).
[[nodiscard]] double income_app_count_correlation(
    const std::vector<DeveloperIncome>& incomes);

/// Fig. 15 rows: per-category share of total paid revenue, of paid apps, and
/// of developers (a developer counts in a category if they have >= 1 paid
/// app there).
struct CategoryRevenue {
  market::CategoryId category;
  std::string name;
  double revenue_percent = 0.0;
  double apps_percent = 0.0;
  double developers_percent = 0.0;
};

[[nodiscard]] std::vector<CategoryRevenue> category_revenue_breakdown(
    const market::AppStore& store);

/// Fig. 12 support: per-app (average price, downloads) for paid apps, plus
/// the two Pearson correlations the paper reports: price↔downloads (per
/// app) and price↔app-count (per one-dollar price bin).
struct PricePopularity {
  std::vector<double> prices;      ///< average price per paid app (dollars)
  std::vector<double> downloads;   ///< downloads of the same app
  double price_download_correlation = 0.0;
  double price_app_count_correlation = 0.0;
};

[[nodiscard]] PricePopularity price_popularity(const market::AppStore& store);

}  // namespace appstore::pricing
