#include "pricing/breakeven.hpp"

#include <algorithm>
#include <functional>

#include "pricing/income.hpp"

namespace appstore::pricing {

namespace {

/// Average paid income per paid app and average downloads per ad-supported
/// free app, optionally restricted to one category and/or computed from
/// cumulative downloads up to `day`.
struct Sides {
  double paid_income_sum = 0.0;
  std::size_t paid_apps = 0;
  double free_download_sum = 0.0;
  std::size_t free_apps = 0;

  [[nodiscard]] std::optional<double> breakeven() const {
    if (paid_apps == 0 || free_apps == 0 || free_download_sum <= 0.0) return std::nullopt;
    const double avg_paid = paid_income_sum / static_cast<double>(paid_apps);
    const double avg_free = free_download_sum / static_cast<double>(free_apps);
    return avg_paid / avg_free;
  }
};

Sides accumulate(const market::AppStore& store, const std::vector<std::uint64_t>* at_day,
                 std::optional<market::CategoryId> category) {
  Sides sides;
  for (const auto& app : store.apps()) {
    if (category.has_value() && app.category != *category) continue;
    const double downloads =
        at_day != nullptr ? static_cast<double>((*at_day)[app.id.index()])
                          : static_cast<double>(store.downloads_of(app.id));
    if (app.pricing == market::Pricing::kPaid) {
      sides.paid_income_sum += downloads * store.average_price_dollars(app.id);
      ++sides.paid_apps;
    } else if (app.has_ads) {
      sides.free_download_sum += downloads;
      ++sides.free_apps;
    }
  }
  return sides;
}

/// Break-even per popularity tier: free apps sorted by downloads descending,
/// split 20/50/30 (Fig. 17's "most popular / medium / unpopular" tiers).
std::optional<TierBreakeven> tiers_from(const market::AppStore& store,
                                        const std::vector<std::uint64_t>* at_day) {
  const Sides all = accumulate(store, at_day, std::nullopt);
  if (all.paid_apps == 0 || all.free_apps == 0) return std::nullopt;
  const double avg_paid = all.paid_income_sum / static_cast<double>(all.paid_apps);

  std::vector<double> free_downloads;
  for (const auto& app : store.apps()) {
    if (app.pricing != market::Pricing::kFree || !app.has_ads) continue;
    free_downloads.push_back(at_day != nullptr
                                 ? static_cast<double>((*at_day)[app.id.index()])
                                 : static_cast<double>(store.downloads_of(app.id)));
  }
  std::sort(free_downloads.begin(), free_downloads.end(), std::greater<>());

  const auto tier_average = [&](double from_fraction, double to_fraction) {
    const auto from = static_cast<std::size_t>(from_fraction *
                                               static_cast<double>(free_downloads.size()));
    auto to = static_cast<std::size_t>(to_fraction * static_cast<double>(free_downloads.size()));
    to = std::min(to, free_downloads.size());
    if (from >= to) return 0.0;
    double sum = 0.0;
    for (std::size_t i = from; i < to; ++i) sum += free_downloads[i];
    return sum / static_cast<double>(to - from);
  };

  TierBreakeven tiers;
  const double avg_all = tier_average(0.0, 1.0);
  const double avg_popular = tier_average(0.0, 0.2);
  const double avg_medium = tier_average(0.2, 0.7);
  const double avg_unpopular = tier_average(0.7, 1.0);
  tiers.average = avg_all > 0.0 ? avg_paid / avg_all : 0.0;
  tiers.popular = avg_popular > 0.0 ? avg_paid / avg_popular : 0.0;
  tiers.medium = avg_medium > 0.0 ? avg_paid / avg_medium : 0.0;
  tiers.unpopular = avg_unpopular > 0.0 ? avg_paid / avg_unpopular : 0.0;
  return tiers;
}

}  // namespace

std::optional<double> breakeven_ad_income(const market::AppStore& store) {
  return accumulate(store, nullptr, std::nullopt).breakeven();
}

std::optional<TierBreakeven> breakeven_by_tier(const market::AppStore& store) {
  return tiers_from(store, nullptr);
}

std::vector<BreakevenPoint> breakeven_over_time(const market::AppStore& store,
                                                market::Day first_day, market::Day last_day,
                                                market::Day step) {
  // One pass per sampled day would rescan all events; instead accumulate
  // day-bucketed deltas once and walk forward.
  std::vector<BreakevenPoint> series;
  std::vector<std::uint64_t> cumulative(store.apps().size(), 0);

  // Sorted (day, app) pairs let the cursor advance monotonically.
  const auto& log = store.download_log();
  std::vector<std::pair<market::Day, std::uint32_t>> events;
  events.reserve(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    events.emplace_back(log.day()[i], log.app()[i]);
  }
  std::sort(events.begin(), events.end());

  std::size_t cursor = 0;
  for (market::Day day = first_day; day <= last_day; day += step) {
    while (cursor < events.size() && events[cursor].first <= day) {
      ++cumulative[events[cursor].second];
      ++cursor;
    }
    const auto tiers = tiers_from(store, &cumulative);
    if (tiers.has_value()) series.push_back(BreakevenPoint{day, *tiers});
  }
  return series;
}

std::vector<CategoryBreakeven> breakeven_by_category(const market::AppStore& store) {
  std::vector<CategoryBreakeven> rows;
  for (const auto& category : store.categories()) {
    const auto value = accumulate(store, nullptr, category.id).breakeven();
    if (!value.has_value()) continue;
    rows.push_back(CategoryBreakeven{category.id, category.name, *value});
  }
  std::sort(rows.begin(), rows.end(), [](const CategoryBreakeven& a, const CategoryBreakeven& b) {
    return a.breakeven_dollars > b.breakeven_dollars;
  });
  return rows;
}

}  // namespace appstore::pricing
