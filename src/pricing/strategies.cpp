#include "pricing/strategies.hpp"

#include <set>

namespace appstore::pricing {

std::vector<double> apps_per_developer(const market::AppStore& store, market::Pricing pricing) {
  std::vector<std::uint32_t> counts(store.developers().size(), 0);
  for (const auto& app : store.apps()) {
    if (app.pricing == pricing) ++counts[app.developer.index()];
  }
  std::vector<double> result;
  for (const auto count : counts) {
    if (count > 0) result.push_back(static_cast<double>(count));
  }
  return result;
}

std::vector<double> categories_per_developer(const market::AppStore& store,
                                             market::Pricing pricing) {
  std::vector<std::set<std::uint32_t>> categories(store.developers().size());
  for (const auto& app : store.apps()) {
    if (app.pricing == pricing) categories[app.developer.index()].insert(app.category.value);
  }
  std::vector<double> result;
  for (const auto& set : categories) {
    if (!set.empty()) result.push_back(static_cast<double>(set.size()));
  }
  return result;
}

StrategyShares strategy_shares(const market::AppStore& store) {
  std::vector<std::uint8_t> has_free(store.developers().size(), 0);
  std::vector<std::uint8_t> has_paid(store.developers().size(), 0);
  for (const auto& app : store.apps()) {
    (app.pricing == market::Pricing::kFree ? has_free : has_paid)[app.developer.index()] = 1;
  }
  StrategyShares shares;
  std::size_t free_only = 0;
  std::size_t paid_only = 0;
  std::size_t both = 0;
  for (std::size_t d = 0; d < store.developers().size(); ++d) {
    if (has_free[d] == 0 && has_paid[d] == 0) continue;  // devs without apps
    ++shares.developers;
    if (has_free[d] != 0 && has_paid[d] != 0) {
      ++both;
    } else if (has_free[d] != 0) {
      ++free_only;
    } else {
      ++paid_only;
    }
  }
  if (shares.developers > 0) {
    const auto total = static_cast<double>(shares.developers);
    shares.free_only = static_cast<double>(free_only) / total;
    shares.paid_only = static_cast<double>(paid_only) / total;
    shares.both = static_cast<double>(both) / total;
  }
  return shares;
}

}  // namespace appstore::pricing
