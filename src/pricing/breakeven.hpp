// Break-even ad income per download (Eq. 7, §6.3).
//
//   AdIncome = [ sum_paid downloads(i) * price(i) / N_paid ]
//              / [ sum_free downloads(j) / N_free ]
//
// i.e. the per-download ad revenue a free app must earn to match the income
// of an average paid app. Only free apps with ads are considered. Variants:
// per popularity tier (top 20% / middle 50% / bottom 30% of free apps by
// downloads), per app category, and over time (using cumulative downloads
// up to a given day).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "market/store.hpp"
#include "market/types.hpp"

namespace appstore::pricing {

/// Store-wide break-even ad income per download (dollars). nullopt when the
/// store has no paid apps or no ad-supported free downloads.
[[nodiscard]] std::optional<double> breakeven_ad_income(const market::AppStore& store);

/// Fig. 17 tiers.
struct TierBreakeven {
  double popular = 0.0;    ///< top 20% of free apps by downloads
  double medium = 0.0;     ///< next 50%
  double unpopular = 0.0;  ///< bottom 30%
  double average = 0.0;    ///< all ad-supported free apps
};

[[nodiscard]] std::optional<TierBreakeven> breakeven_by_tier(const market::AppStore& store);

/// Fig. 17 time series: break-even values computed from cumulative
/// downloads up to each sampled day.
struct BreakevenPoint {
  market::Day day = 0;
  TierBreakeven tiers;
};

[[nodiscard]] std::vector<BreakevenPoint> breakeven_over_time(const market::AppStore& store,
                                                              market::Day first_day,
                                                              market::Day last_day,
                                                              market::Day step = 1);

/// Fig. 18: break-even per category (paid average income of the category
/// vs free ad-supported downloads of the same category). Categories lacking
/// either side are omitted.
struct CategoryBreakeven {
  market::CategoryId category;
  std::string name;
  double breakeven_dollars = 0.0;
};

[[nodiscard]] std::vector<CategoryBreakeven> breakeven_by_category(
    const market::AppStore& store);

}  // namespace appstore::pricing
