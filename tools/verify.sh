#!/usr/bin/env bash
# One-command verification: every recipe from ROADMAP.md "How to verify",
# in order, plus the ingest-while-serving acceptance bench.
#
#   tier-1   default build + full ctest suite
#   tsan     ThreadSanitizer preset (parallel engine, server pool, live store)
#   chaos    corruption-fuzz labels under ASan
#   load     worker-pool server + load-harness labels (default build)
#   query    query-engine label (default build)
#   recovery durability suite (WAL, checkpoints, crash fuzz) under ASan,
#            then bench_recovery with its replay-throughput floors
#   ingest   bench_ingest: live vs stop-the-world, exits non-zero below the
#            5x floor or on any cross-regime checksum divergence
#   gameday  scenario + admission suite (default build), then bench_gameday:
#            exits non-zero if adaptive admission at 2x saturation loses the
#            queue-delay budget or too much goodput vs the fixed cliff
#   federation  sharded gateway suite under default AND TSan presets (ring
#            properties, hedge determinism, cross-shard golden parity), then
#            bench_federation: exits non-zero when a fan-out endpoint's p99
#            breaches 3x the single-shard p99 at the same offered load
#
# Usage: tools/verify.sh [stage ...]     (no args = all stages)
# Env:   JOBS=<n> to cap build parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

STAGES=("$@")
[[ ${#STAGES[@]} -eq 0 ]] && STAGES=(tier1 tsan chaos load query recovery ingest gameday federation)

want() {
  local stage
  for stage in "${STAGES[@]}"; do
    [[ "$stage" == "$1" ]] && return 0
  done
  return 1
}

banner() { printf '\n==== %s ====\n' "$1"; }

if want tier1; then
  banner "tier-1: default build + full test suite"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
fi

if want tsan; then
  banner "tsan: ThreadSanitizer preset"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$JOBS"
  ctest --preset tsan
fi

if want chaos; then
  banner "chaos: corruption fuzz under ASan"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j"$JOBS"
  ctest --test-dir build-asan -L chaos --output-on-failure
fi

if want load; then
  banner "load: server pool + load harness"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build -L load --output-on-failure
fi

if want query; then
  banner "query: query engine label"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build -L query --output-on-failure
fi

if want recovery; then
  banner "recovery: durability suite under ASan + bench_recovery floors"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j"$JOBS" --target recovery_test
  ctest --test-dir build-asan -L recovery --output-on-failure
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target bench_recovery
  ./build/bench/bench_recovery --metrics-out=results/BENCH_recovery_metrics.json
fi

if want ingest; then
  banner "ingest: live store vs stop-the-world rebuild (floor 5x)"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target bench_ingest
  ./build/bench/bench_ingest --metrics-out=results/BENCH_ingest_metrics.json
fi

if want gameday; then
  banner "gameday: scenario + admission suite, then the SLO gate"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target gameday_test bench_gameday
  ctest --test-dir build -L gameday --output-on-failure
  ./build/bench/bench_gameday --metrics-out=results/BENCH_gameday_metrics.json
fi

if want federation; then
  banner "federation: sharded gateway suite (default + TSan), then the fan-out floor"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target federation_test bench_federation
  ctest --test-dir build -L federation --output-on-failure
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$JOBS" --target federation_test
  ctest --test-dir build-tsan -L federation --output-on-failure
  ./build/bench/bench_federation --metrics-out=results/BENCH_federation_metrics.json
fi

banner "all requested stages passed: ${STAGES[*]}"
