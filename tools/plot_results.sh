#!/usr/bin/env bash
# Regenerates the paper's figures as PNGs from the CSVs the bench suite
# writes under results/. Requires gnuplot.
#
#   ./tools/plot_results.sh [results_dir] [output_dir]
#
# Only plots for experiments whose CSVs exist; run the bench suite first:
#   for b in build/bench/*; do $b; done
set -euo pipefail

RESULTS="${1:-results}"
OUT="${2:-plots}"
mkdir -p "$OUT"

have() { [ -f "$1" ]; }
say() { printf '%s\n' "$*"; }

command -v gnuplot >/dev/null || { say "gnuplot not found"; exit 1; }

# ---- Fig. 2: Pareto CDF ------------------------------------------------------
if have "$RESULTS/fig2/pareto_Anzhi.csv"; then
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,600
set output '$OUT/fig2_pareto.png'
set title 'Fig. 2 — downloads CDF vs normalized app rank'
set xlabel 'Normalized app ranking (%)'
set ylabel 'Percentage of downloads (CDF)'
set key bottom right
plot for [store in "Anzhi AppChina 1Mobile SlideMe"] \
  sprintf('$RESULTS/fig2/pareto_%s.csv', store) using 1:2 skip 1 \
  with lines lw 2 title store
EOF
  say "wrote $OUT/fig2_pareto.png"
fi

# ---- Fig. 3: rank-download log-log -------------------------------------------
for store in Anzhi AppChina 1Mobile SlideMe; do
  csv="$RESULTS/fig3/rank_downloads_$store.csv"
  if have "$csv"; then
    gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 700,550
set output '$OUT/fig3_$store.png'
set title 'Fig. 3 — $store downloads vs rank'
set logscale xy
set xlabel 'App rank'
set ylabel 'Downloads'
plot '$csv' using 1:(\$2 > 0 ? \$2 : NaN) skip 1 with points pt 7 ps 0.4 notitle
EOF
    say "wrote $OUT/fig3_$store.png"
  fi
done

# ---- Fig. 7: affinity CDFs -----------------------------------------------------
if have "$RESULTS/fig7/affinity_cdf_depth1.csv"; then
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,600
set output '$OUT/fig7_affinity_cdf.png'
set title 'Fig. 7 — per-user temporal affinity CDF'
set xlabel 'Affinity probability'
set ylabel 'Users (CDF)'
set key bottom right
plot for [d=1:3] sprintf('$RESULTS/fig7/affinity_cdf_depth%d.csv', d) \
  using 1:2 skip 1 with lines lw 2 title sprintf('depth %d', d)
EOF
  say "wrote $OUT/fig7_affinity_cdf.png"
fi

# ---- Fig. 8: model fits ---------------------------------------------------------
for store in Anzhi AppChina 1Mobile; do
  csv="$RESULTS/fig8/fit_curves_$store.csv"
  if have "$csv"; then
    gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,600
set output '$OUT/fig8_$store.png'
set title 'Fig. 8 — $store: predicted vs measured popularity'
set logscale xy
set xlabel 'App rank'
set ylabel 'Downloads'
set key top right
plot '$csv' using 1:(\$2>0?\$2:NaN) skip 1 with points pt 7 ps 0.4 title 'measured', \
     '$csv' using 1:(\$3>0?\$3:NaN) skip 1 with lines lw 2 title 'ZIPF', \
     '$csv' using 1:(\$4>0?\$4:NaN) skip 1 with lines lw 2 title 'ZIPF-at-most-once', \
     '$csv' using 1:(\$5>0?\$5:NaN) skip 1 with lines lw 2 title 'APP-CLUSTERING'
EOF
    say "wrote $OUT/fig8_$store.png"
  fi
done

# ---- Fig. 13: income CDF ---------------------------------------------------------
if have "$RESULTS/fig13/income_cdf.csv"; then
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 700,550
set output '$OUT/fig13_income_cdf.png'
set title 'Fig. 13 — developer income CDF'
set logscale x
set xlabel 'Total income per developer (dollars)'
set ylabel 'Developers (CDF)'
plot '$RESULTS/fig13/income_cdf.csv' using (\$1>0?\$1:NaN):2 skip 1 with steps lw 2 notitle
EOF
  say "wrote $OUT/fig13_income_cdf.png"
fi

# ---- Fig. 17: break-even over time ------------------------------------------------
if have "$RESULTS/fig17/breakeven_time.csv"; then
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,600
set output '$OUT/fig17_breakeven.png'
set title 'Fig. 17 — break-even ad income per download'
set logscale y
set xlabel 'Day'
set ylabel 'Necessary ad income (dollars)'
set key top right
plot '$RESULTS/fig17/breakeven_time.csv' using 1:2 skip 1 with lines lw 2 title 'average', \
     '' using 1:3 skip 1 with lines lw 2 title 'popular (top 20%)', \
     '' using 1:4 skip 1 with lines lw 2 title 'medium (next 50%)', \
     '' using 1:5 skip 1 with lines lw 2 title 'unpopular (last 30%)'
EOF
  say "wrote $OUT/fig17_breakeven.png"
fi

# ---- Fig. 19: cache hit ratios ------------------------------------------------------
if have "$RESULTS/fig19/lru_hit_ratio.csv"; then
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 800,600
set output '$OUT/fig19_cache.png'
set title 'Fig. 19 — LRU hit ratio by workload model'
set xlabel 'Cache size (% of total apps)'
set ylabel 'Cache hit ratio'
set yrange [0:1]
set key bottom right
plot '$RESULTS/fig19/lru_hit_ratio.csv' using 1:2 skip 1 with linespoints lw 2 title 'ZIPF', \
     '' using 1:3 skip 1 with linespoints lw 2 title 'ZIPF-at-most-once', \
     '' using 1:4 skip 1 with linespoints lw 2 title 'APP-CLUSTERING'
EOF
  say "wrote $OUT/fig19_cache.png"
fi

say "done."
