file(REMOVE_RECURSE
  "CMakeFiles/revenue_advisor.dir/revenue_advisor.cpp.o"
  "CMakeFiles/revenue_advisor.dir/revenue_advisor.cpp.o.d"
  "revenue_advisor"
  "revenue_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revenue_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
