# Empty dependencies file for revenue_advisor.
# This may be replaced when dependencies are built.
