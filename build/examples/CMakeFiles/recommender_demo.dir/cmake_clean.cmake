file(REMOVE_RECURSE
  "CMakeFiles/recommender_demo.dir/recommender_demo.cpp.o"
  "CMakeFiles/recommender_demo.dir/recommender_demo.cpp.o.d"
  "recommender_demo"
  "recommender_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
