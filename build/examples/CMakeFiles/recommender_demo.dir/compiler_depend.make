# Empty compiler generated dependencies file for recommender_demo.
# This may be replaced when dependencies are built.
