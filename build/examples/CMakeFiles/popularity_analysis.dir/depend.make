# Empty dependencies file for popularity_analysis.
# This may be replaced when dependencies are built.
