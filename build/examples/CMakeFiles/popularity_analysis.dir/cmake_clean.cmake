file(REMOVE_RECURSE
  "CMakeFiles/popularity_analysis.dir/popularity_analysis.cpp.o"
  "CMakeFiles/popularity_analysis.dir/popularity_analysis.cpp.o.d"
  "popularity_analysis"
  "popularity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popularity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
