# Empty compiler generated dependencies file for analyze_crawl.
# This may be replaced when dependencies are built.
