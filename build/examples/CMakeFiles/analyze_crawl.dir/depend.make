# Empty dependencies file for analyze_crawl.
# This may be replaced when dependencies are built.
