file(REMOVE_RECURSE
  "CMakeFiles/analyze_crawl.dir/analyze_crawl.cpp.o"
  "CMakeFiles/analyze_crawl.dir/analyze_crawl.cpp.o.d"
  "analyze_crawl"
  "analyze_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
