# Empty dependencies file for appstore_pricing.
# This may be replaced when dependencies are built.
