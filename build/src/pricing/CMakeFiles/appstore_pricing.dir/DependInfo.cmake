
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pricing/breakeven.cpp" "src/pricing/CMakeFiles/appstore_pricing.dir/breakeven.cpp.o" "gcc" "src/pricing/CMakeFiles/appstore_pricing.dir/breakeven.cpp.o.d"
  "/root/repo/src/pricing/income.cpp" "src/pricing/CMakeFiles/appstore_pricing.dir/income.cpp.o" "gcc" "src/pricing/CMakeFiles/appstore_pricing.dir/income.cpp.o.d"
  "/root/repo/src/pricing/strategies.cpp" "src/pricing/CMakeFiles/appstore_pricing.dir/strategies.cpp.o" "gcc" "src/pricing/CMakeFiles/appstore_pricing.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/appstore_market.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/appstore_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
