file(REMOVE_RECURSE
  "libappstore_pricing.a"
)
