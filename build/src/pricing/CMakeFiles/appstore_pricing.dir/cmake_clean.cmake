file(REMOVE_RECURSE
  "CMakeFiles/appstore_pricing.dir/breakeven.cpp.o"
  "CMakeFiles/appstore_pricing.dir/breakeven.cpp.o.d"
  "CMakeFiles/appstore_pricing.dir/income.cpp.o"
  "CMakeFiles/appstore_pricing.dir/income.cpp.o.d"
  "CMakeFiles/appstore_pricing.dir/strategies.cpp.o"
  "CMakeFiles/appstore_pricing.dir/strategies.cpp.o.d"
  "libappstore_pricing.a"
  "libappstore_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
