# Empty dependencies file for appstore_fit.
# This may be replaced when dependencies are built.
