file(REMOVE_RECURSE
  "libappstore_fit.a"
)
