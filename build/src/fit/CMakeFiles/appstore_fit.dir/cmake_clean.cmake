file(REMOVE_RECURSE
  "CMakeFiles/appstore_fit.dir/sweep.cpp.o"
  "CMakeFiles/appstore_fit.dir/sweep.cpp.o.d"
  "libappstore_fit.a"
  "libappstore_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
