# Empty dependencies file for appstore_report.
# This may be replaced when dependencies are built.
