file(REMOVE_RECURSE
  "libappstore_report.a"
)
