file(REMOVE_RECURSE
  "CMakeFiles/appstore_report.dir/series.cpp.o"
  "CMakeFiles/appstore_report.dir/series.cpp.o.d"
  "CMakeFiles/appstore_report.dir/table.cpp.o"
  "CMakeFiles/appstore_report.dir/table.cpp.o.d"
  "libappstore_report.a"
  "libappstore_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
