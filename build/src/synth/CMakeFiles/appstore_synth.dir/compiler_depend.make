# Empty compiler generated dependencies file for appstore_synth.
# This may be replaced when dependencies are built.
