file(REMOVE_RECURSE
  "CMakeFiles/appstore_synth.dir/generator.cpp.o"
  "CMakeFiles/appstore_synth.dir/generator.cpp.o.d"
  "CMakeFiles/appstore_synth.dir/profile.cpp.o"
  "CMakeFiles/appstore_synth.dir/profile.cpp.o.d"
  "libappstore_synth.a"
  "libappstore_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
