file(REMOVE_RECURSE
  "libappstore_synth.a"
)
