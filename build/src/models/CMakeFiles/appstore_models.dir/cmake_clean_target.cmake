file(REMOVE_RECURSE
  "libappstore_models.a"
)
