file(REMOVE_RECURSE
  "CMakeFiles/appstore_models.dir/app_clustering_model.cpp.o"
  "CMakeFiles/appstore_models.dir/app_clustering_model.cpp.o.d"
  "CMakeFiles/appstore_models.dir/model.cpp.o"
  "CMakeFiles/appstore_models.dir/model.cpp.o.d"
  "CMakeFiles/appstore_models.dir/params.cpp.o"
  "CMakeFiles/appstore_models.dir/params.cpp.o.d"
  "CMakeFiles/appstore_models.dir/stream.cpp.o"
  "CMakeFiles/appstore_models.dir/stream.cpp.o.d"
  "CMakeFiles/appstore_models.dir/workload.cpp.o"
  "CMakeFiles/appstore_models.dir/workload.cpp.o.d"
  "CMakeFiles/appstore_models.dir/zipf_amo_model.cpp.o"
  "CMakeFiles/appstore_models.dir/zipf_amo_model.cpp.o.d"
  "CMakeFiles/appstore_models.dir/zipf_model.cpp.o"
  "CMakeFiles/appstore_models.dir/zipf_model.cpp.o.d"
  "libappstore_models.a"
  "libappstore_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
