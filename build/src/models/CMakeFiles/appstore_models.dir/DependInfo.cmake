
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/app_clustering_model.cpp" "src/models/CMakeFiles/appstore_models.dir/app_clustering_model.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/app_clustering_model.cpp.o.d"
  "/root/repo/src/models/model.cpp" "src/models/CMakeFiles/appstore_models.dir/model.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/model.cpp.o.d"
  "/root/repo/src/models/params.cpp" "src/models/CMakeFiles/appstore_models.dir/params.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/params.cpp.o.d"
  "/root/repo/src/models/stream.cpp" "src/models/CMakeFiles/appstore_models.dir/stream.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/stream.cpp.o.d"
  "/root/repo/src/models/workload.cpp" "src/models/CMakeFiles/appstore_models.dir/workload.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/workload.cpp.o.d"
  "/root/repo/src/models/zipf_amo_model.cpp" "src/models/CMakeFiles/appstore_models.dir/zipf_amo_model.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/zipf_amo_model.cpp.o.d"
  "/root/repo/src/models/zipf_model.cpp" "src/models/CMakeFiles/appstore_models.dir/zipf_model.cpp.o" "gcc" "src/models/CMakeFiles/appstore_models.dir/zipf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/appstore_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
