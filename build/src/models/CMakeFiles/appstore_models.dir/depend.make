# Empty dependencies file for appstore_models.
# This may be replaced when dependencies are built.
