file(REMOVE_RECURSE
  "libappstore_affinity.a"
)
