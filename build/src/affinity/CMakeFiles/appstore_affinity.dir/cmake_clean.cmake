file(REMOVE_RECURSE
  "CMakeFiles/appstore_affinity.dir/metric.cpp.o"
  "CMakeFiles/appstore_affinity.dir/metric.cpp.o.d"
  "CMakeFiles/appstore_affinity.dir/strings.cpp.o"
  "CMakeFiles/appstore_affinity.dir/strings.cpp.o.d"
  "libappstore_affinity.a"
  "libappstore_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
