# Empty compiler generated dependencies file for appstore_affinity.
# This may be replaced when dependencies are built.
