file(REMOVE_RECURSE
  "CMakeFiles/appstore_net.dir/http.cpp.o"
  "CMakeFiles/appstore_net.dir/http.cpp.o.d"
  "CMakeFiles/appstore_net.dir/proxy.cpp.o"
  "CMakeFiles/appstore_net.dir/proxy.cpp.o.d"
  "CMakeFiles/appstore_net.dir/rate_limiter.cpp.o"
  "CMakeFiles/appstore_net.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/appstore_net.dir/server.cpp.o"
  "CMakeFiles/appstore_net.dir/server.cpp.o.d"
  "CMakeFiles/appstore_net.dir/socket.cpp.o"
  "CMakeFiles/appstore_net.dir/socket.cpp.o.d"
  "libappstore_net.a"
  "libappstore_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
