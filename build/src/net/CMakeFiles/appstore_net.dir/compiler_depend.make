# Empty compiler generated dependencies file for appstore_net.
# This may be replaced when dependencies are built.
