file(REMOVE_RECURSE
  "libappstore_net.a"
)
