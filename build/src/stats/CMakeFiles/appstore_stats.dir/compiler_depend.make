# Empty compiler generated dependencies file for appstore_stats.
# This may be replaced when dependencies are built.
