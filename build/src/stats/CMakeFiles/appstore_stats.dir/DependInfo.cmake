
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/alias.cpp" "src/stats/CMakeFiles/appstore_stats.dir/alias.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/alias.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/appstore_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/appstore_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/appstore_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distance.cpp" "src/stats/CMakeFiles/appstore_stats.dir/distance.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/distance.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/appstore_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/appstore_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/mle.cpp" "src/stats/CMakeFiles/appstore_stats.dir/mle.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/mle.cpp.o.d"
  "/root/repo/src/stats/pareto.cpp" "src/stats/CMakeFiles/appstore_stats.dir/pareto.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/pareto.cpp.o.d"
  "/root/repo/src/stats/powerlaw.cpp" "src/stats/CMakeFiles/appstore_stats.dir/powerlaw.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/powerlaw.cpp.o.d"
  "/root/repo/src/stats/zipf.cpp" "src/stats/CMakeFiles/appstore_stats.dir/zipf.cpp.o" "gcc" "src/stats/CMakeFiles/appstore_stats.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
