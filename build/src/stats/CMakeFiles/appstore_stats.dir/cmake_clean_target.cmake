file(REMOVE_RECURSE
  "libappstore_stats.a"
)
