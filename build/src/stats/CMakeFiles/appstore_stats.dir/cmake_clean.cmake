file(REMOVE_RECURSE
  "CMakeFiles/appstore_stats.dir/alias.cpp.o"
  "CMakeFiles/appstore_stats.dir/alias.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/appstore_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/correlation.cpp.o"
  "CMakeFiles/appstore_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/descriptive.cpp.o"
  "CMakeFiles/appstore_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/distance.cpp.o"
  "CMakeFiles/appstore_stats.dir/distance.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/ecdf.cpp.o"
  "CMakeFiles/appstore_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/histogram.cpp.o"
  "CMakeFiles/appstore_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/mle.cpp.o"
  "CMakeFiles/appstore_stats.dir/mle.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/pareto.cpp.o"
  "CMakeFiles/appstore_stats.dir/pareto.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/appstore_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/appstore_stats.dir/zipf.cpp.o"
  "CMakeFiles/appstore_stats.dir/zipf.cpp.o.d"
  "libappstore_stats.a"
  "libappstore_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
