file(REMOVE_RECURSE
  "CMakeFiles/appstore_market.dir/serialize.cpp.o"
  "CMakeFiles/appstore_market.dir/serialize.cpp.o.d"
  "CMakeFiles/appstore_market.dir/snapshot.cpp.o"
  "CMakeFiles/appstore_market.dir/snapshot.cpp.o.d"
  "CMakeFiles/appstore_market.dir/store.cpp.o"
  "CMakeFiles/appstore_market.dir/store.cpp.o.d"
  "libappstore_market.a"
  "libappstore_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
