
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/serialize.cpp" "src/market/CMakeFiles/appstore_market.dir/serialize.cpp.o" "gcc" "src/market/CMakeFiles/appstore_market.dir/serialize.cpp.o.d"
  "/root/repo/src/market/snapshot.cpp" "src/market/CMakeFiles/appstore_market.dir/snapshot.cpp.o" "gcc" "src/market/CMakeFiles/appstore_market.dir/snapshot.cpp.o.d"
  "/root/repo/src/market/store.cpp" "src/market/CMakeFiles/appstore_market.dir/store.cpp.o" "gcc" "src/market/CMakeFiles/appstore_market.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/appstore_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
