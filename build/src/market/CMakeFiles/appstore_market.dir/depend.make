# Empty dependencies file for appstore_market.
# This may be replaced when dependencies are built.
