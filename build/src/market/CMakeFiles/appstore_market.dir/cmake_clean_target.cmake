file(REMOVE_RECURSE
  "libappstore_market.a"
)
