file(REMOVE_RECURSE
  "CMakeFiles/appstore_core.dir/study.cpp.o"
  "CMakeFiles/appstore_core.dir/study.cpp.o.d"
  "libappstore_core.a"
  "libappstore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
