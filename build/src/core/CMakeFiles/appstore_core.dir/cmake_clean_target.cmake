file(REMOVE_RECURSE
  "libappstore_core.a"
)
