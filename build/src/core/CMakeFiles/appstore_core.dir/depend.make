# Empty dependencies file for appstore_core.
# This may be replaced when dependencies are built.
