file(REMOVE_RECURSE
  "CMakeFiles/appstore_recommend.dir/recommender.cpp.o"
  "CMakeFiles/appstore_recommend.dir/recommender.cpp.o.d"
  "libappstore_recommend.a"
  "libappstore_recommend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_recommend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
