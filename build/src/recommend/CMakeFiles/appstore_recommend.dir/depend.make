# Empty dependencies file for appstore_recommend.
# This may be replaced when dependencies are built.
