file(REMOVE_RECURSE
  "libappstore_recommend.a"
)
