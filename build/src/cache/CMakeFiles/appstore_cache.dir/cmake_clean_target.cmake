file(REMOVE_RECURSE
  "libappstore_cache.a"
)
