file(REMOVE_RECURSE
  "CMakeFiles/appstore_cache.dir/policy.cpp.o"
  "CMakeFiles/appstore_cache.dir/policy.cpp.o.d"
  "CMakeFiles/appstore_cache.dir/prefetch.cpp.o"
  "CMakeFiles/appstore_cache.dir/prefetch.cpp.o.d"
  "CMakeFiles/appstore_cache.dir/sim.cpp.o"
  "CMakeFiles/appstore_cache.dir/sim.cpp.o.d"
  "libappstore_cache.a"
  "libappstore_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
