# Empty dependencies file for appstore_cache.
# This may be replaced when dependencies are built.
