# Empty dependencies file for appstore_util.
# This may be replaced when dependencies are built.
