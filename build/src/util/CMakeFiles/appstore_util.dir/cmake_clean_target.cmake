file(REMOVE_RECURSE
  "libappstore_util.a"
)
