file(REMOVE_RECURSE
  "CMakeFiles/appstore_util.dir/cli.cpp.o"
  "CMakeFiles/appstore_util.dir/cli.cpp.o.d"
  "CMakeFiles/appstore_util.dir/csv.cpp.o"
  "CMakeFiles/appstore_util.dir/csv.cpp.o.d"
  "CMakeFiles/appstore_util.dir/format.cpp.o"
  "CMakeFiles/appstore_util.dir/format.cpp.o.d"
  "CMakeFiles/appstore_util.dir/logging.cpp.o"
  "CMakeFiles/appstore_util.dir/logging.cpp.o.d"
  "CMakeFiles/appstore_util.dir/rng.cpp.o"
  "CMakeFiles/appstore_util.dir/rng.cpp.o.d"
  "CMakeFiles/appstore_util.dir/strings.cpp.o"
  "CMakeFiles/appstore_util.dir/strings.cpp.o.d"
  "libappstore_util.a"
  "libappstore_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
