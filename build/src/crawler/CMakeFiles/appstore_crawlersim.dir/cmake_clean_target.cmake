file(REMOVE_RECURSE
  "libappstore_crawlersim.a"
)
