# Empty compiler generated dependencies file for appstore_crawlersim.
# This may be replaced when dependencies are built.
