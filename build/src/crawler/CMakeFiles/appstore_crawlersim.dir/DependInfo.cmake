
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crawler/apk.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/apk.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/apk.cpp.o.d"
  "/root/repo/src/crawler/crawler.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/crawler.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/crawler.cpp.o.d"
  "/root/repo/src/crawler/database.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/database.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/database.cpp.o.d"
  "/root/repo/src/crawler/db_io.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/db_io.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/db_io.cpp.o.d"
  "/root/repo/src/crawler/json.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/json.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/json.cpp.o.d"
  "/root/repo/src/crawler/service.cpp" "src/crawler/CMakeFiles/appstore_crawlersim.dir/service.cpp.o" "gcc" "src/crawler/CMakeFiles/appstore_crawlersim.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/appstore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/appstore_market.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/appstore_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
