file(REMOVE_RECURSE
  "CMakeFiles/appstore_crawlersim.dir/apk.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/apk.cpp.o.d"
  "CMakeFiles/appstore_crawlersim.dir/crawler.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/crawler.cpp.o.d"
  "CMakeFiles/appstore_crawlersim.dir/database.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/database.cpp.o.d"
  "CMakeFiles/appstore_crawlersim.dir/db_io.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/db_io.cpp.o.d"
  "CMakeFiles/appstore_crawlersim.dir/json.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/json.cpp.o.d"
  "CMakeFiles/appstore_crawlersim.dir/service.cpp.o"
  "CMakeFiles/appstore_crawlersim.dir/service.cpp.o.d"
  "libappstore_crawlersim.a"
  "libappstore_crawlersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_crawlersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
