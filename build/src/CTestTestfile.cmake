# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("market")
subdirs("models")
subdirs("affinity")
subdirs("synth")
subdirs("pricing")
subdirs("recommend")
subdirs("cache")
subdirs("fit")
subdirs("net")
subdirs("crawler")
subdirs("report")
subdirs("core")
