# Empty dependencies file for bench_fig19_cache.
# This may be replaced when dependencies are built.
