# Empty compiler generated dependencies file for bench_fig16_developer_strategies.
# This may be replaced when dependencies are built.
