file(REMOVE_RECURSE
  "../bench/bench_fig16_developer_strategies"
  "../bench/bench_fig16_developer_strategies.pdb"
  "CMakeFiles/bench_fig16_developer_strategies.dir/bench_fig16_developer_strategies.cpp.o"
  "CMakeFiles/bench_fig16_developer_strategies.dir/bench_fig16_developer_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_developer_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
