file(REMOVE_RECURSE
  "../bench/bench_fig3_powerlaw"
  "../bench/bench_fig3_powerlaw.pdb"
  "CMakeFiles/bench_fig3_powerlaw.dir/bench_fig3_powerlaw.cpp.o"
  "CMakeFiles/bench_fig3_powerlaw.dir/bench_fig3_powerlaw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
