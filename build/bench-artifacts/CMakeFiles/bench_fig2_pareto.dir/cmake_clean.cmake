file(REMOVE_RECURSE
  "../bench/bench_fig2_pareto"
  "../bench/bench_fig2_pareto.pdb"
  "CMakeFiles/bench_fig2_pareto.dir/bench_fig2_pareto.cpp.o"
  "CMakeFiles/bench_fig2_pareto.dir/bench_fig2_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
