# Empty dependencies file for bench_fig8_model_fit.
# This may be replaced when dependencies are built.
