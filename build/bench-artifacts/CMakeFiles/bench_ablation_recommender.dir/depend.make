# Empty dependencies file for bench_ablation_recommender.
# This may be replaced when dependencies are built.
