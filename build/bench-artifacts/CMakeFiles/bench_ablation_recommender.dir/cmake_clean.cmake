file(REMOVE_RECURSE
  "../bench/bench_ablation_recommender"
  "../bench/bench_ablation_recommender.pdb"
  "CMakeFiles/bench_ablation_recommender.dir/bench_ablation_recommender.cpp.o"
  "CMakeFiles/bench_ablation_recommender.dir/bench_ablation_recommender.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
