# Empty compiler generated dependencies file for bench_fig6_affinity_depth.
# This may be replaced when dependencies are built.
