file(REMOVE_RECURSE
  "../bench/bench_fig6_affinity_depth"
  "../bench/bench_fig6_affinity_depth.pdb"
  "CMakeFiles/bench_fig6_affinity_depth.dir/bench_fig6_affinity_depth.cpp.o"
  "CMakeFiles/bench_fig6_affinity_depth.dir/bench_fig6_affinity_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_affinity_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
