# Empty compiler generated dependencies file for bench_fig13_income_cdf.
# This may be replaced when dependencies are built.
