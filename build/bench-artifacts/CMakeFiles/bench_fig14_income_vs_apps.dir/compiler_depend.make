# Empty compiler generated dependencies file for bench_fig14_income_vs_apps.
# This may be replaced when dependencies are built.
