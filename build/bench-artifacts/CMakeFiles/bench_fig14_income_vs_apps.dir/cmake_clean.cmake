file(REMOVE_RECURSE
  "../bench/bench_fig14_income_vs_apps"
  "../bench/bench_fig14_income_vs_apps.pdb"
  "CMakeFiles/bench_fig14_income_vs_apps.dir/bench_fig14_income_vs_apps.cpp.o"
  "CMakeFiles/bench_fig14_income_vs_apps.dir/bench_fig14_income_vs_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_income_vs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
