file(REMOVE_RECURSE
  "../bench/bench_fig11_paid_free"
  "../bench/bench_fig11_paid_free.pdb"
  "CMakeFiles/bench_fig11_paid_free.dir/bench_fig11_paid_free.cpp.o"
  "CMakeFiles/bench_fig11_paid_free.dir/bench_fig11_paid_free.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_paid_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
