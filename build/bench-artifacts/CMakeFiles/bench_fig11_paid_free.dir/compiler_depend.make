# Empty compiler generated dependencies file for bench_fig11_paid_free.
# This may be replaced when dependencies are built.
