
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_cache_policies.cpp" "bench-artifacts/CMakeFiles/bench_ablation_cache_policies.dir/bench_ablation_cache_policies.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_ablation_cache_policies.dir/bench_ablation_cache_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/appstore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/appstore_crawlersim.dir/DependInfo.cmake"
  "/root/repo/build/src/recommend/CMakeFiles/appstore_recommend.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/appstore_report.dir/DependInfo.cmake"
  "/root/repo/build/src/affinity/CMakeFiles/appstore_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/appstore_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/appstore_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/appstore_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/appstore_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/appstore_models.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/appstore_market.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/appstore_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/appstore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/appstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
