file(REMOVE_RECURSE
  "../bench/bench_fig4_updates"
  "../bench/bench_fig4_updates.pdb"
  "CMakeFiles/bench_fig4_updates.dir/bench_fig4_updates.cpp.o"
  "CMakeFiles/bench_fig4_updates.dir/bench_fig4_updates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
