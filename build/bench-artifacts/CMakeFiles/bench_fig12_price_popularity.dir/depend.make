# Empty dependencies file for bench_fig12_price_popularity.
# This may be replaced when dependencies are built.
