file(REMOVE_RECURSE
  "../bench/bench_fig15_category_revenue"
  "../bench/bench_fig15_category_revenue.pdb"
  "CMakeFiles/bench_fig15_category_revenue.dir/bench_fig15_category_revenue.cpp.o"
  "CMakeFiles/bench_fig15_category_revenue.dir/bench_fig15_category_revenue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_category_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
