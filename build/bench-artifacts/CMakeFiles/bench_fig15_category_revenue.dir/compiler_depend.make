# Empty compiler generated dependencies file for bench_fig15_category_revenue.
# This may be replaced when dependencies are built.
