# Empty dependencies file for bench_fig18_breakeven_category.
# This may be replaced when dependencies are built.
