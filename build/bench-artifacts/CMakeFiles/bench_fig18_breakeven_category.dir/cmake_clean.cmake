file(REMOVE_RECURSE
  "../bench/bench_fig18_breakeven_category"
  "../bench/bench_fig18_breakeven_category.pdb"
  "CMakeFiles/bench_fig18_breakeven_category.dir/bench_fig18_breakeven_category.cpp.o"
  "CMakeFiles/bench_fig18_breakeven_category.dir/bench_fig18_breakeven_category.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_breakeven_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
