# Empty compiler generated dependencies file for bench_fig17_breakeven_time.
# This may be replaced when dependencies are built.
