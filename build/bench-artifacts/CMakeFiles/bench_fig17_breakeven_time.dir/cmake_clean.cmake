file(REMOVE_RECURSE
  "../bench/bench_fig17_breakeven_time"
  "../bench/bench_fig17_breakeven_time.pdb"
  "CMakeFiles/bench_fig17_breakeven_time.dir/bench_fig17_breakeven_time.cpp.o"
  "CMakeFiles/bench_fig17_breakeven_time.dir/bench_fig17_breakeven_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_breakeven_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
