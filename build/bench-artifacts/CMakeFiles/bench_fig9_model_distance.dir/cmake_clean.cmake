file(REMOVE_RECURSE
  "../bench/bench_fig9_model_distance"
  "../bench/bench_fig9_model_distance.pdb"
  "CMakeFiles/bench_fig9_model_distance.dir/bench_fig9_model_distance.cpp.o"
  "CMakeFiles/bench_fig9_model_distance.dir/bench_fig9_model_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_model_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
