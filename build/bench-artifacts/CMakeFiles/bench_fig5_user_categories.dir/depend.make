# Empty dependencies file for bench_fig5_user_categories.
# This may be replaced when dependencies are built.
