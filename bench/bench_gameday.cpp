// Game-day SLO bench (ISSUE 9 acceptance bench).
//
// Two experiments against the same generated store:
//
//   1. Admission sweep — offered load at {0.5, 1, 2}x worker-pool capacity,
//      fixed queue-capacity cliff vs adaptive (kQueueDelay) admission, with
//      and without a seeded chaos overlay (connection resets + injected
//      500s). Service time is modeled by an injected 5 ms latency fault at
//      FaultSite::kServer so capacity is sleep-bound and the comparison is
//      meaningful on a single-core CI box: 2 workers / 5 ms = 400 rps.
//   2. Scenario trajectories — the three load::Scenario shapes (flash crowd,
//      update storm, diurnal) replayed in real time with their seeded fault
//      plans plus the service-time rule, recording the shed breakdown and
//      the admission controller's behaviour over a whole synthetic game day
//      whose peaks run 2.4x past capacity.
//
// The SLO gate (exit code 1 on violation): at 2x saturation — with faults
// and without — adaptive admission must keep queue-wait p99 within the
// budget AND keep goodput at >= --gate-ratio of the fixed baseline. The
// fixed cliff "wins" goodput by queueing everything; the gate pins how much
// goodput the adaptive mode is allowed to trade for its order-of-magnitude
// queue-delay reduction. Results land in results/BENCH_gameday.json
// (docs/gameday.md documents the shape).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "chaos/fault.hpp"
#include "common.hpp"
#include "crawler/service.hpp"
#include "load/harness.hpp"
#include "load/report.hpp"
#include "load/scenario.hpp"
#include "load/workload.hpp"
#include "net/admission.hpp"
#include "report/table.hpp"

namespace {

using namespace appstore;
using namespace std::chrono_literals;
using crawlersim::Json;
using crawlersim::JsonArray;
using crawlersim::json_object;

constexpr double kUnlimited = 1e12;  // effectively disable rate limiting
// The sleep-bound service model: every request is delayed by an injected
// latency fault, so capacity = workers / service_time regardless of CPU.
constexpr std::chrono::milliseconds kServiceTime{5};
constexpr std::size_t kWorkers = 2;
constexpr std::size_t kQueueCapacity = 64;
constexpr double kCapacityRps =
    static_cast<double>(kWorkers) * 1000.0 / kServiceTime.count();
// Queue-wait p99 budget for the adaptive mode at 2x saturation: 6x the 5 ms
// target — one log-histogram bucket of slack over the (13.1, 26.2] ms bucket
// the estimate lands in (gameday_test uses the same budget).
constexpr double kQueueWaitBudget = 0.030;

struct CellResult {
  double multiplier = 0.0;
  net::AdmissionMode mode = net::AdmissionMode::kFixed;
  bool faults_on = false;
  load::RunReport report;
  double goodput_rps = 0.0;     ///< totals.ok / wall_seconds
  double queue_wait_p99 = 0.0;  ///< server_queue_wait_seconds p99
  std::uint64_t admission_sheds = 0;
  std::uint64_t faults_injected = 0;
  std::size_t final_limit = 0;
};

struct ScenarioResult {
  load::ScenarioKind kind = load::ScenarioKind::kFlashCrowd;
  double peak_offered_rps = 0.0;
  load::RunReport report;
  std::uint64_t faults_injected = 0;
  std::uint64_t admission_sheds = 0;
  std::size_t final_limit = 0;
};

/// The per-request fault schedule of one sweep cell: the uncapped latency
/// rule is the service-time model; with faults on, seeded resets and 500s
/// hit first (rules are evaluated in order, first hit wins).
[[nodiscard]] chaos::FaultPlan sweep_plan(bool faults_on, std::uint64_t seed) {
  chaos::FaultPlan plan;
  plan.seed = seed;
  plan.max_faults_per_key = 0;  // uncapped: the latency rule is permanent
  if (faults_on) {
    plan.rules.push_back(
        {chaos::FaultSite::kServer, chaos::FaultKind::kConnectionReset, 0.02});
    plan.rules.push_back({chaos::FaultSite::kServer, chaos::FaultKind::kHttp500, 0.02});
  }
  plan.rules.push_back(
      {chaos::FaultSite::kServer, chaos::FaultKind::kLatency, 1.0, kServiceTime});
  return plan;
}

/// Feeds the adaptive controller a dozen over-target intervals so the limit
/// converges before the measured window — the measurement then shows the
/// controller's steady state, not its first ramp-down.
void preconverge(net::AdmissionController* controller) {
  if (controller == nullptr ||
      controller->options().mode == net::AdmissionMode::kFixed) {
    return;
  }
  for (int interval = 0; interval < 12; ++interval) {
    for (int sample = 0; sample < 4; ++sample) controller->observe(40ms);
    std::this_thread::sleep_for(27ms);
  }
}

[[nodiscard]] CellResult run_cell(const market::AppStore& store, double multiplier,
                                  net::AdmissionMode mode, bool faults_on,
                                  std::uint32_t clients, double seconds,
                                  std::uint64_t seed) {
  chaos::FaultInjector injector(sweep_plan(faults_on, seed));

  crawlersim::ServicePolicy policy;
  policy.rate_per_second = kUnlimited;
  policy.burst = kUnlimited;
  policy.server_workers = kWorkers;
  policy.server_queue_capacity = kQueueCapacity;
  policy.faults = &injector;
  policy.admission.mode = mode;
  policy.admission.target_delay = 5ms;
  policy.admission.interval = 25ms;
  policy.admission.increase = 1;
  policy.admission.decrease = 0.5;
  crawlersim::AppstoreService service(store, policy);
  service.set_day(60);

  load::ScheduleOptions schedule_options;
  schedule_options.seed = seed;
  schedule_options.clients = clients;
  const double offered = multiplier * kCapacityRps;
  schedule_options.open_loop_rate_hz = offered / clients;
  schedule_options.requests_per_client = static_cast<std::uint32_t>(
      std::ceil(schedule_options.open_loop_rate_hz * seconds));
  schedule_options.mix.app_count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(store.apps().size()));
  const load::Schedule schedule = load::build_schedule(schedule_options);

  // Only overload cells start from the converged limit; under-capacity cells
  // measure the resting state (limit at the ceiling, no sheds expected).
  if (multiplier >= 2.0) preconverge(service.admission());

  load::RunOptions run_options;
  run_options.service = &service;
  run_options.over_sockets = true;

  CellResult cell;
  cell.multiplier = multiplier;
  cell.mode = mode;
  cell.faults_on = faults_on;
  cell.report = load::run(schedule, run_options);
  cell.goodput_rps = cell.report.wall_seconds > 0.0
                         ? static_cast<double>(cell.report.totals.ok) /
                               cell.report.wall_seconds
                         : 0.0;
  const obs::Snapshot snapshot = service.metrics().snapshot();
  const auto* wait = snapshot.find_histogram("server_queue_wait_seconds");
  cell.queue_wait_p99 = wait != nullptr ? wait->p99 : 0.0;
  cell.faults_injected = injector.injected_total();
  if (net::AdmissionController* controller = service.admission()) {
    cell.admission_sheds = controller->sheds();
    cell.final_limit = controller->limit();
  }
  service.stop();
  return cell;
}

[[nodiscard]] ScenarioResult run_scenario(const market::AppStore& store,
                                          load::ScenarioKind kind,
                                          std::uint64_t seed) {
  load::ScenarioOptions options;
  options.kind = kind;
  options.seed = seed;
  options.clients = 8;
  options.base_rate_hz = 30.0;  // 240 rps steady = 0.6x capacity...
  options.peak_multiplier = 4.0;  // ...and 960 rps offered at the peak (2.4x)
  options.duration_seconds = 3.0;
  options.faults.rate = 0.15;
  options.faults.latency = 20ms;
  const load::Scenario scenario = load::build_scenario(options);

  // The scenario's seeded chaos overlay plus the same sleep-bound
  // service-time rule the sweep uses, replayed in real time: the peak phases
  // run past the 400 rps worker-pool capacity, so the trajectory exercises
  // the admission controller, not just the fault seams. (Determinism of the
  // same scenarios replayed on a VirtualClock is gameday_test's job.)
  chaos::FaultPlan plan = *scenario.fault_plan;
  plan.max_faults_per_key = 0;
  plan.rules.push_back(
      {chaos::FaultSite::kServer, chaos::FaultKind::kLatency, 1.0, kServiceTime});
  chaos::FaultInjector injector(plan);

  crawlersim::ServicePolicy policy;
  policy.rate_per_second = kUnlimited;
  policy.burst = kUnlimited;
  policy.server_workers = kWorkers;
  policy.server_queue_capacity = kQueueCapacity;
  policy.faults = &injector;
  policy.admission.mode = net::AdmissionMode::kQueueDelay;
  policy.admission.target_delay = 5ms;
  policy.admission.interval = 25ms;
  policy.admission.increase = 1;
  policy.admission.decrease = 0.5;
  crawlersim::AppstoreService service(store, policy);
  service.set_day(60);

  load::RunOptions run_options;
  run_options.service = &service;
  run_options.over_sockets = true;

  ScenarioResult result;
  result.kind = kind;
  result.peak_offered_rps = scenario.peak_offered_rps();
  result.report = load::run(scenario.schedule, run_options);
  result.faults_injected = injector.injected_total();
  if (net::AdmissionController* controller = service.admission()) {
    result.admission_sheds = controller->sheds();
    result.final_limit = controller->limit();
  }
  service.stop();
  return result;
}

[[nodiscard]] Json to_json(const CellResult& cell) {
  return json_object(
      {{"offered_multiplier", cell.multiplier},
       {"mode", std::string(net::to_string(cell.mode))},
       {"faults", cell.faults_on},
       {"goodput_rps", cell.goodput_rps},
       {"queue_wait_p99_seconds", cell.queue_wait_p99},
       {"admission_sheds", cell.admission_sheds},
       {"faults_injected", cell.faults_injected},
       {"final_admission_limit", static_cast<std::uint64_t>(cell.final_limit)},
       {"report", load::to_json(cell.report)}});
}

[[nodiscard]] Json to_json(const ScenarioResult& scenario) {
  return json_object(
      {{"kind", std::string(load::to_string(scenario.kind))},
       {"peak_offered_rps", scenario.peak_offered_rps},
       {"faults_injected", scenario.faults_injected},
       {"admission_sheds", scenario.admission_sheds},
       {"final_admission_limit", static_cast<std::uint64_t>(scenario.final_limit)},
       {"report", load::to_json(scenario.report)}});
}

void add_row(report::Table& table, const CellResult& cell) {
  table.row({util::format("{:.1f}x", cell.multiplier),
             std::string(net::to_string(cell.mode)),
             cell.faults_on ? "on" : "off",
             util::format("{:.0f}", cell.goodput_rps),
             std::to_string(cell.report.totals.ok),
             util::format("{}/{}/{}", cell.report.totals.shed_accept,
                          cell.report.totals.shed_queue,
                          cell.report.totals.shed_admission),
             util::format("{:.1f}", cell.queue_wait_p99 * 1e3),
             std::to_string(cell.final_limit)});
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_gameday",
                       "adaptive admission vs the fixed queue cliff across offered "
                       "load, plus full game-day scenario trajectories",
                       // Small store on purpose: service time is the injected
                       // 5 ms latency fault, so the handler's directory-scan
                       // cost must stay negligible next to it.
                       0.005, 2e-6);
  auto clients = cli.raw().u64("clients", 16, "concurrent open-loop clients");
  auto seconds = cli.raw().f64("seconds", 0.8,
                               "measured window per sweep cell (overload cells "
                               "run 2x this)");
  auto gate_ratio =
      cli.raw().f64("gate-ratio", 0.7,
                    "minimum adaptive/fixed goodput ratio at 2x saturation");
  auto out_path =
      cli.raw().str("out", "results/BENCH_gameday.json", "report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "gameday: adaptive admission + scenario trajectories",
      "the paper measures the store under its daily crawl; a game day asks what "
      "the serving layer does when that load spikes past capacity");

  const auto generated = synth::generate(synth::anzhi(), cli.config());
  const market::AppStore& store = *generated.store;

  // ---- admission sweep ----------------------------------------------------
  const double multipliers[] = {0.5, 1.0, 2.0};
  const net::AdmissionMode modes[] = {net::AdmissionMode::kFixed,
                                      net::AdmissionMode::kQueueDelay};
  std::vector<CellResult> cells;
  for (const bool faults_on : {false, true}) {
    for (const double multiplier : multipliers) {
      for (const net::AdmissionMode mode : modes) {
        const double window = multiplier >= 2.0 ? *seconds * 2.0 : *seconds;
        cells.push_back(run_cell(store, multiplier, mode, faults_on,
                                 static_cast<std::uint32_t>(*clients), window,
                                 cli.seed()));
      }
    }
  }

  report::Table table({"offered", "mode", "faults", "goodput", "ok",
                       "shed a/q/adm", "wait p99 ms", "limit"});
  for (const CellResult& cell : cells) add_row(table, cell);
  benchx::print_table(table);

  // ---- scenario trajectories ----------------------------------------------
  std::vector<ScenarioResult> scenarios;
  for (const load::ScenarioKind kind :
       {load::ScenarioKind::kFlashCrowd, load::ScenarioKind::kUpdateStorm,
        load::ScenarioKind::kDiurnal}) {
    scenarios.push_back(run_scenario(store, kind, cli.seed()));
    const ScenarioResult& scenario = scenarios.back();
    std::printf(
        "scenario %-12s peak=%.0frps ok=%llu shed(a/q/adm)=%llu/%llu/%llu "
        "faults=%llu limit=%zu\n",
        std::string(load::to_string(scenario.kind)).c_str(),
        scenario.peak_offered_rps,
        static_cast<unsigned long long>(scenario.report.totals.ok),
        static_cast<unsigned long long>(scenario.report.totals.shed_accept),
        static_cast<unsigned long long>(scenario.report.totals.shed_queue),
        static_cast<unsigned long long>(scenario.report.totals.shed_admission),
        static_cast<unsigned long long>(scenario.faults_injected),
        scenario.final_limit);
  }

  // ---- SLO gate -----------------------------------------------------------
  bool gate_pass = true;
  JsonArray gate_checks;
  for (const bool faults_on : {false, true}) {
    const CellResult* fixed = nullptr;
    const CellResult* adaptive = nullptr;
    for (const CellResult& cell : cells) {
      if (cell.multiplier < 2.0 || cell.faults_on != faults_on) continue;
      if (cell.mode == net::AdmissionMode::kFixed) fixed = &cell;
      if (cell.mode == net::AdmissionMode::kQueueDelay) adaptive = &cell;
    }
    if (fixed == nullptr || adaptive == nullptr) {
      gate_pass = false;
      continue;
    }
    const double ratio = fixed->goodput_rps > 0.0
                             ? adaptive->goodput_rps / fixed->goodput_rps
                             : 0.0;
    const bool goodput_ok = ratio >= *gate_ratio;
    const bool delay_ok = adaptive->queue_wait_p99 <= kQueueWaitBudget;
    gate_pass = gate_pass && goodput_ok && delay_ok;
    gate_checks.push_back(json_object(
        {{"faults", faults_on},
         {"goodput_ratio", ratio},
         {"goodput_ok", goodput_ok},
         {"adaptive_queue_wait_p99_seconds", adaptive->queue_wait_p99},
         {"fixed_queue_wait_p99_seconds", fixed->queue_wait_p99},
         {"queue_delay_ok", delay_ok}}));
    std::printf(
        "gate (faults %s): goodput ratio %.2f (>= %.2f: %s), adaptive wait p99 "
        "%.1fms (<= %.0fms: %s), fixed wait p99 %.1fms\n",
        faults_on ? "on" : "off", ratio, *gate_ratio, goodput_ok ? "ok" : "FAIL",
        adaptive->queue_wait_p99 * 1e3, kQueueWaitBudget * 1e3,
        delay_ok ? "ok" : "FAIL", fixed->queue_wait_p99 * 1e3);
  }

  JsonArray sweep;
  for (const CellResult& cell : cells) sweep.push_back(to_json(cell));
  JsonArray trajectory;
  for (const ScenarioResult& scenario : scenarios) {
    trajectory.push_back(to_json(scenario));
  }
  const Json document = json_object(
      {{"service_model",
        json_object({{"workers", static_cast<std::uint64_t>(kWorkers)},
                     {"queue_capacity", static_cast<std::uint64_t>(kQueueCapacity)},
                     {"service_time_ms",
                      static_cast<std::uint64_t>(kServiceTime.count())},
                     {"capacity_rps", kCapacityRps}})},
       {"queue_wait_budget_seconds", kQueueWaitBudget},
       {"gate_ratio", *gate_ratio},
       {"sweep", Json(std::move(sweep))},
       {"scenarios", Json(std::move(trajectory))},
       {"gate", json_object({{"pass", gate_pass},
                             {"checks", Json(std::move(gate_checks))}})}});
  load::write_json_file(document, *out_path);
  cli.metrics().gauge("gameday_gate_pass").set(gate_pass ? 1.0 : 0.0);
  cli.dump_metrics();
  if (!gate_pass) {
    std::fprintf(stderr, "bench_gameday: SLO gate FAILED (see %s)\n",
                 out_path->c_str());
    return 1;
  }
  return 0;
}
