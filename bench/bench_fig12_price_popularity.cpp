// Fig. 12: downloads and number of apps as a function of price (SlideMe).
// Paper: price is negatively correlated with downloads (Pearson -0.229) and
// with the number of apps per one-dollar bin (-0.240) — cheaper apps are
// more numerous and more popular.
#include "common.hpp"

#include "pricing/income.hpp"
#include "stats/histogram.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig12_price_popularity",
                       "Fig. 12: expensive apps are less popular");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 12 — Expensive apps are less popular",
                        "Pearson(price, downloads) = -0.229; Pearson(price, #apps per "
                        "$1 bin) = -0.240");

  const auto generated = synth::generate(synth::slideme(), config);
  const auto result = pricing::price_popularity(*generated.store);

  report::Table summary({"correlation", "value"});
  summary.row({"price vs downloads (per app)",
               report::fixed(result.price_download_correlation, 3)});
  summary.row({"price vs #apps (per $1 bin)",
               report::fixed(result.price_app_count_correlation, 3)});
  benchx::print_table(summary);

  // Binned view: average downloads + app count per one-dollar bin.
  stats::LinearHistogram bins(0.0, 50.0, 1.0);
  for (std::size_t i = 0; i < result.prices.size(); ++i) {
    bins.add(result.prices[i], result.downloads[i]);
  }
  report::Table table({"price bin", "apps", "avg downloads"});
  report::Series series{"price_bins", {"price", "apps", "avg_downloads"}, {}};
  for (const auto& bin : bins.bins()) {
    if (bin.count == 0) continue;
    table.row({util::format("${:.0f}-{:.0f}", bin.lower, bin.upper),
               std::to_string(bin.count), report::fixed(bin.mean(), 1)});
    series.add({bin.center(), static_cast<double>(bin.count), bin.mean()});
  }
  benchx::print_table(table);
  report::export_all({series}, "fig12");
  return 0;
}
