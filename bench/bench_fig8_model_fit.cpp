// Fig. 8: predicted vs measured popularity per appstore (AppChina, Anzhi,
// 1Mobile). Paper: APP-CLUSTERING (best p = 0.9-0.95) follows the measured
// curve closely at both ends; ZIPF-at-most-once fixes the head only; pure
// ZIPF overshoots the head by more than an order of magnitude.
#include "common.hpp"

#include "core/study.hpp"
#include "fit/sweep.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig8_model_fit",
                       "Fig. 8: ZIPF vs ZIPF-at-most-once vs APP-CLUSTERING fits", 0.02, 1e-4);
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading("Fig. 8 — APP-CLUSTERING fits measured downloads closely",
                        "best fits use p=0.9-0.95; ZIPF overshoots the head, "
                        "ZIPF-at-most-once diverges at the tail");

  fit::SweepOptions options;
  options.zr_grid = {1.0, 1.2, 1.4, 1.6, 1.8};
  options.p_grid = {0.85, 0.9, 0.95};
  options.zc_grid = {1.2, 1.4, 1.6};
  options.seed = cli.seed() + 1;
  options.threads = cli.threads();

  report::Table table({"store", "model", "best zr", "best p", "best zc", "distance"});
  std::vector<report::Series> all_series;

  const std::vector<synth::StoreProfile> profiles = {synth::appchina(), synth::anzhi(),
                                                     synth::one_mobile()};
  for (const auto& profile : profiles) {
    const auto generated = synth::generate(profile, config);
    const auto measured = generated.store->downloads_by_rank();
    const auto users = static_cast<std::uint64_t>(measured.front());

    report::Series series;
    series.name = "fit_curves_" + profile.name;
    series.columns = {"rank", "measured", "zipf", "zipf_amo", "app_clustering"};

    std::vector<std::vector<double>> curves;
    for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                            models::ModelKind::kAppClustering}) {
      const auto result = fit::fit_model(
          kind, measured, users,
          static_cast<std::uint32_t>(generated.store->categories().size()), options);
      const bool clustering = kind == models::ModelKind::kAppClustering;
      table.row({profile.name, std::string(to_string(kind)),
                 report::fixed(result.best.zr, 2),
                 clustering ? report::fixed(result.best.p, 2) : "-",
                 clustering ? report::fixed(result.best.zc, 2) : "-",
                 report::fixed(result.distance, 3)});
      curves.push_back(result.simulated_by_rank);
    }

    std::size_t step = 1;
    for (std::size_t i = 0; i < measured.size(); i += step) {
      series.add({static_cast<double>(i + 1), measured[i], curves[0][i], curves[1][i],
                  curves[2][i]});
      if (i + 1 >= 100) step = std::max<std::size_t>(1, (i + 1) / 100);
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig8");
  return 0;
}
