// Fig. 17: break-even ad income per download over time (Eq. 7), overall and
// per free-app popularity tier.
// Paper: an average free app needs ~$0.21/download to match an average paid
// app's income; the most popular free apps need only ~$0.033, unpopular ones
// ~$1.56; the break-even drops over the last three months.
//
// Reproduction note: this bench uses the slideme_fig17() profile, which
// matures the paid segment's pre-crawl base; Table 1's literal paid row
// (111K -> 914K downloads inside the window) would make the curve rise —
// an inconsistency between Table 1 and Fig. 17 documented in EXPERIMENTS.md.
#include "common.hpp"

#include "pricing/breakeven.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig17_breakeven_time",
                       "Fig. 17: break-even ad income over time");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 17 — Free apps with ads can beat paid apps",
                        "average break-even ~$0.21/download; popular ~$0.033; "
                        "unpopular ~$1.56; declining over time");

  const auto generated = synth::generate(synth::slideme_fig17(), config);
  auto series_points =
      pricing::breakeven_over_time(*generated.store, 0, synth::slideme().crawl_days, 10);

  // The paid segment is simulated at a finer download scale than the free
  // one (resolution); Eq. 7 is a paid-income / free-downloads ratio, so
  // rescale to make the dollar figures comparable with the paper's.
  const double normalization = config.download_scale / config.paid_download_scale;
  for (auto& point : series_points) {
    point.tiers.average *= normalization;
    point.tiers.popular *= normalization;
    point.tiers.medium *= normalization;
    point.tiers.unpopular *= normalization;
  }

  report::Table table({"day", "average", "popular (top 20%)", "medium (next 50%)",
                       "unpopular (last 30%)"});
  report::Series series{"breakeven_time",
                        {"day", "average", "popular", "medium", "unpopular"},
                        {}};
  for (const auto& point : series_points) {
    table.row({std::to_string(point.day), "$" + report::fixed(point.tiers.average, 4),
               "$" + report::fixed(point.tiers.popular, 4),
               "$" + report::fixed(point.tiers.medium, 4),
               "$" + report::fixed(point.tiers.unpopular, 4)});
    series.add({static_cast<double>(point.day), point.tiers.average, point.tiers.popular,
                point.tiers.medium, point.tiers.unpopular});
  }
  benchx::print_table(table);
  if (series_points.size() >= 2) {
    const double first = series_points.front().tiers.average;
    const double last = series_points.back().tiers.average;
    std::printf("average break-even %s over the window: $%.4f -> $%.4f\n",
                last < first ? "declines" : "rises", first, last);
    std::printf("unpopular/popular ratio at end: %.0fx (paper: ~47x)\n",
                series_points.back().tiers.popular > 0
                    ? series_points.back().tiers.unpopular /
                          series_points.back().tiers.popular
                    : 0.0);
  }
  report::export_all({series}, "fig17");
  return 0;
}
