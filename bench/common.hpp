// Shared helpers for the per-figure bench binaries.
//
// Every bench accepts --seed, --app-scale and --dl-scale so paper-scale runs
// are a flag away; defaults keep the whole suite under a few minutes on one
// core. Each bench prints the paper's rows/series to stdout and mirrors them
// as CSVs under results/<experiment>/.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace appstore::benchx {

/// Standard bench flags; call parse() then config().
class BenchCli {
 public:
  /// Default scales are per-bench: figure benches that only generate stores
  /// afford app_scale 0.1 / dl_scale 5e-4 (shape-faithful, ~15 s for all four
  /// stores); fitting benches that run dozens of Monte Carlo sweeps pass
  /// smaller defaults.
  BenchCli(std::string program, std::string description, double default_app_scale = 0.1,
           double default_dl_scale = 5e-4)
      : cli_(std::move(program), std::move(description)),
        seed_(cli_.u64("seed", 0x5eed, "PRNG seed")),
        app_scale_(cli_.f64("app-scale", default_app_scale,
                            "fraction of paper-scale app counts")),
        dl_scale_(cli_.f64("dl-scale", default_dl_scale,
                           "fraction of paper-scale download totals")),
        comments_(cli_.flag("comments", "generate comment streams")),
        verbose_(cli_.flag("verbose", "info-level logging")),
        metrics_out_(cli_.str("metrics-out", "",
                              "write the bench's metrics registry as JSON to this file")),
        threads_(cli_.u64("threads", 0,
                          "worker threads for parallelized paths (0 = all cores)")) {}

  void parse(int argc, const char* const* argv) {
    cli_.parse(argc, argv);
    if (*verbose_) util::set_log_level(util::Level::kInfo);
  }

  [[nodiscard]] synth::GeneratorConfig config() const {
    synth::GeneratorConfig config;
    config.seed = *seed_;
    config.app_scale = *app_scale_;
    config.download_scale = *dl_scale_;
    config.comments = *comments_;
    return config;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return *seed_; }

  /// --threads for every parallelized path (src/par); 0 = all cores. Outputs
  /// are thread-count-invariant, so this only changes wall time.
  [[nodiscard]] std::size_t threads() const noexcept {
    return static_cast<std::size_t>(*threads_);
  }

  [[nodiscard]] util::Cli& raw() noexcept { return cli_; }

  /// Registry instrumented code should record into; pass `&metrics()` down to
  /// the layers the bench exercises.
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

  /// Writes the registry as JSON to --metrics-out (no-op when the flag is
  /// unset). Call once at the end of main so BENCH_*.json trajectories can
  /// track counters, not just wall time.
  void dump_metrics() const {
    if (!metrics_out_->empty()) obs::write_json_file(metrics_, *metrics_out_);
  }

 private:
  util::Cli cli_;
  std::shared_ptr<std::uint64_t> seed_;
  std::shared_ptr<double> app_scale_;
  std::shared_ptr<double> dl_scale_;
  std::shared_ptr<bool> comments_;
  std::shared_ptr<bool> verbose_;
  std::shared_ptr<std::string> metrics_out_;
  std::shared_ptr<std::uint64_t> threads_;
  obs::Registry metrics_;
};

inline void print_heading(std::string_view experiment, std::string_view paper_claim) {
  std::printf("=== %.*s ===\n", static_cast<int>(experiment.size()), experiment.data());
  std::printf("paper: %.*s\n\n", static_cast<int>(paper_claim.size()), paper_claim.data());
}

inline void print_table(const report::Table& table) {
  std::fputs(table.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace appstore::benchx
