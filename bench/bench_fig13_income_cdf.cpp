// Fig. 13: CDF of total income per developer from paid apps (SlideMe).
// Paper: 27% of developers earned nothing, half less than $10, 80% under
// $100, 95% under $1,500 — while ~1% earned above $2M. (Absolute dollar
// levels scale with --dl-scale; the shape and skew are the reproduction
// target.)
#include "common.hpp"

#include "pricing/income.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig13_income_cdf", "Fig. 13: developer income CDF");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 13 — Most developers earn a negligible income",
                        "27% zero income; 50% < $10; 80% < $100; 95% < $1,500; ~1% "
                        "above $2M (paper scale)");

  const auto generated = synth::generate(synth::slideme(), config);
  const auto incomes = pricing::developer_incomes(*generated.store);

  std::vector<double> dollars;
  std::size_t zero_income = 0;
  for (const auto& entry : incomes) {
    dollars.push_back(entry.income_dollars);
    if (entry.income_dollars <= 0.0) ++zero_income;
  }
  const stats::Ecdf cdf(dollars);

  report::Table table({"statistic", "value"});
  table.row({"developers with paid apps", std::to_string(incomes.size())});
  table.row({"zero income share",
             report::percent(static_cast<double>(zero_income) /
                             static_cast<double>(incomes.size()))});
  table.row({"median income", "$" + report::fixed(cdf.inverse(0.5), 2)});
  table.row({"P80 income", "$" + report::fixed(cdf.inverse(0.8), 2)});
  table.row({"P95 income", "$" + report::fixed(cdf.inverse(0.95), 2)});
  table.row({"P99 income", "$" + report::fixed(cdf.inverse(0.99), 2)});
  table.row({"max income", "$" + report::fixed(stats::max_value(dollars), 2)});
  table.row({"income Gini", report::fixed(stats::gini(dollars), 3)});
  benchx::print_table(table);

  report::Series series{"income_cdf", {"income_dollars", "cdf"}, {}};
  for (const auto& point : cdf.steps()) series.add({point.x, point.f});
  report::export_all({series}, "fig13");
  return 0;
}
