// Crash-recovery acceptance bench (ISSUE 8).
//
// One store, three timed lifecycle transitions over identical data:
//
//   * wal replay: open() a store whose entire event history sits in the
//     write-ahead log (the worst-case crash: not one checkpoint landed).
//     Every row goes back through decode + the same append_batch path
//     ingest uses — this is the redo loop recovery leans on for the tail
//     after the last checkpoint.
//   * checkpoint pause: one checkpoint() over the recovered store — the
//     wall time the writer lock is held while the ALSG segments, entity
//     tables, and manifest land (readers stay lock-free throughout; the
//     pause only delays the *next* ingest batch).
//   * cold ALSG load: open() the same store again, now entirely from the
//     checkpoint's manifest — entities + segmented ALSG artifacts adopted
//     wholesale, zero WAL records. The bulk-load floor recovery competes
//     with.
//   * legacy cold start: the pre-durability restart this PR replaced —
//     save_store/load_store CSVs, every event re-recorded one
//     record_download/record_comment call at a time.
//
// Two gates, both enforced on exit:
//   replay >= 2x the legacy cold start (the headline 2x replay floor: the
//     redo loop must beat the path it replaced with room to spare), and
//   replay >= 0.5x the cold ALSG bulk load (replay does strictly more per
//     row — record checksums, op dispatch, store counter redo — so it can
//     never beat a straight segment load; but if it decays past 2x slower,
//     WAL tails between checkpoints become too expensive to carry and the
//     checkpoint cadence breaks down).
// Results land in results/BENCH_recovery.json.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "events/event_log.hpp"
#include "load/report.hpp"
#include "market/durable.hpp"
#include "market/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace appstore;

/// One day's download batch: `rows` events over `users`/`apps`, all dated
/// `day` (matches the daily-crawl shape of bench_ingest).
[[nodiscard]] events::EventLog make_downloads(std::uint64_t seed, std::uint64_t rows,
                                              std::uint32_t users, std::uint32_t apps,
                                              std::int32_t day) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> user(rows);
  std::vector<std::uint32_t> app(rows);
  std::vector<std::int32_t> day_column(rows, day);
  for (std::uint64_t i = 0; i < rows; ++i) {
    user[i] = static_cast<std::uint32_t>(rng.below(users));
    app[i] = static_cast<std::uint32_t>(rng.below(apps));
  }
  return events::EventLog::from_columns(events::Columns::kDay, std::move(user),
                                        std::move(app), std::move(day_column));
}

/// One day's comment batch (quarter of the download volume, with ratings).
[[nodiscard]] events::EventLog make_comments(std::uint64_t seed, std::uint64_t rows,
                                             std::uint32_t users, std::uint32_t apps,
                                             std::int32_t day) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> user(rows);
  std::vector<std::uint32_t> app(rows);
  std::vector<std::int32_t> day_column(rows, day);
  std::vector<std::uint8_t> rating(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    user[i] = static_cast<std::uint32_t>(rng.below(users));
    app[i] = static_cast<std::uint32_t>(rng.below(apps));
    rating[i] = static_cast<std::uint8_t>(1 + rng.below(5));
  }
  return events::EventLog::from_columns(events::Columns::kDay | events::Columns::kRating,
                                        std::move(user), std::move(app),
                                        std::move(day_column), {}, std::move(rating));
}

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_recovery",
                       "store open via WAL redo vs via checkpoint manifest, plus "
                       "the checkpoint pause itself");
  auto users = cli.raw().u64("users", 20000, "distinct users in the workload");
  auto apps = cli.raw().u64("apps", 4096, "distinct apps in the workload");
  auto days = cli.raw().u64("days", 64, "ingest batches (virtual crawl days)");
  auto rows = cli.raw().u64("rows-per-day", 16384, "download events per day");
  auto out_path =
      cli.raw().str("out", "results/BENCH_recovery.json", "report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "recovery: WAL redo vs checkpoint bulk load",
      "a crawl box that dies mid-day must come back with every acknowledged "
      "row, fast enough that day-boundary checkpoints stay infrequent");

  const auto directory =
      std::filesystem::temp_directory_path() / "appstore_bench_recovery";
  std::filesystem::remove_all(directory);

  market::DurableOptions options;
  const std::uint64_t comment_rows = *rows / 4;
  const std::uint64_t total_rows = *days * (*rows + comment_rows);
  options.live.segment_rows = 1ull << 16;
  options.live.max_rows = (*days * *rows + options.live.segment_rows) /
                          options.live.segment_rows * options.live.segment_rows;
  options.live.max_users = static_cast<std::uint32_t>(*users);

  // Build: every batch WAL-logged, no checkpoint — the whole history is redo.
  {
    market::DurableStore durable(directory, "bench", options);
    (void)durable.open();
    const market::CategoryId category = durable.add_category("bench");
    const market::DeveloperId developer = durable.add_developer("bench");
    (void)durable.add_users(static_cast<std::uint32_t>(*users));
    for (std::uint64_t i = 0; i < *apps; ++i) {
      (void)durable.add_app(util::format("app-{}", i), developer, category,
                            market::Pricing::kFree, 0, 0);
    }
    for (std::uint64_t day = 0; day < *days; ++day) {
      const auto day32 = static_cast<std::int32_t>(day);
      durable.ingest_downloads(make_downloads(cli.seed() + day, *rows,
                                              static_cast<std::uint32_t>(*users),
                                              static_cast<std::uint32_t>(*apps), day32));
      durable.ingest_comments(make_comments(cli.seed() + 7919 + day, comment_rows,
                                            static_cast<std::uint32_t>(*users),
                                            static_cast<std::uint32_t>(*apps), day32));
    }
    durable.close();
  }

  // WAL replay: open() redoes every batch, then the checkpoint retires it.
  // While the store is up, also export the legacy CSV form for the
  // cold-start comparison below.
  const auto legacy_directory =
      std::filesystem::temp_directory_path() / "appstore_bench_recovery_legacy";
  std::filesystem::remove_all(legacy_directory);
  std::filesystem::create_directories(legacy_directory);
  double replay_seconds = 0.0;
  double checkpoint_pause_seconds = 0.0;
  std::uint64_t replayed_records = 0;
  {
    market::DurableStore durable(directory, "bench", options);
    const auto start = std::chrono::steady_clock::now();
    const market::RecoveryReport report = durable.open();
    replay_seconds = seconds_since(start);
    replayed_records = report.replayed_records;
    if (report.manifest_found || report.wal_torn_tail) {
      std::fprintf(stderr, "FAIL: build phase left an unexpected on-disk state\n");
      return 1;
    }
    checkpoint_pause_seconds = durable.checkpoint().write_seconds;
    market::save_store(durable.store(), legacy_directory);
    durable.close();
  }

  // Cold ALSG load: open() from the manifest alone, zero records replayed.
  double cold_seconds = 0.0;
  {
    market::DurableStore durable(directory, "bench", options);
    const auto start = std::chrono::steady_clock::now();
    const market::RecoveryReport report = durable.open();
    cold_seconds = seconds_since(start);
    if (!report.manifest_found || report.replayed_records != 0) {
      std::fprintf(stderr, "FAIL: checkpoint did not retire the WAL\n");
      return 1;
    }
    durable.close();
  }
  std::filesystem::remove_all(directory);

  // Legacy cold start: CSV parse + one store API call per event row.
  double legacy_seconds = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    const auto store = market::load_store(legacy_directory);
    legacy_seconds = seconds_since(start);
    if (store->total_downloads() != *days * *rows) {
      std::fprintf(stderr, "FAIL: legacy load dropped rows\n");
      return 1;
    }
  }
  std::filesystem::remove_all(legacy_directory);

  const double replay_rows_per_second = static_cast<double>(total_rows) / replay_seconds;
  const double cold_rows_per_second = static_cast<double>(total_rows) / cold_seconds;
  const double legacy_rows_per_second = static_cast<double>(total_rows) / legacy_seconds;
  const double replay_vs_cold = replay_rows_per_second / cold_rows_per_second;
  const double replay_vs_legacy = replay_rows_per_second / legacy_rows_per_second;

  report::Table table({"path", "seconds", "rows/s"});
  table.row({"wal replay open", util::format("{:.3f}", replay_seconds),
             util::format("{:.0f}", replay_rows_per_second)});
  table.row({"cold ALSG open", util::format("{:.3f}", cold_seconds),
             util::format("{:.0f}", cold_rows_per_second)});
  table.row({"legacy CSV load", util::format("{:.3f}", legacy_seconds),
             util::format("{:.0f}", legacy_rows_per_second)});
  table.row({"checkpoint pause", util::format("{:.3f}", checkpoint_pause_seconds), "-"});
  benchx::print_table(table);
  std::printf("replayed %llu WAL records covering %llu event rows\n",
              static_cast<unsigned long long>(replayed_records),
              static_cast<unsigned long long>(total_rows));
  std::printf("replay = %.2fx the legacy cold start (floor 2.0x), "
              "%.2fx the ALSG bulk load (floor 0.5x)\n",
              replay_vs_legacy, replay_vs_cold);

  const crawlersim::Json document = crawlersim::json_object(
      {{"bench", "recovery"},
       {"seed", cli.seed()},
       {"users", *users},
       {"apps", *apps},
       {"days", *days},
       {"rows_per_day", *rows},
       {"total_rows", total_rows},
       {"replayed_records", replayed_records},
       {"wal_replay_seconds", replay_seconds},
       {"wal_replay_rows_per_second", replay_rows_per_second},
       {"cold_alsg_seconds", cold_seconds},
       {"cold_alsg_rows_per_second", cold_rows_per_second},
       {"legacy_cold_seconds", legacy_seconds},
       {"legacy_cold_rows_per_second", legacy_rows_per_second},
       {"checkpoint_pause_seconds", checkpoint_pause_seconds},
       {"replay_vs_cold", replay_vs_cold},
       {"replay_vs_legacy", replay_vs_legacy}});
  if (load::write_json_file(document, *out_path)) {
    std::printf("wrote %s\n", out_path->c_str());
  }

  cli.metrics().gauge("recovery_replay_vs_cold").add(replay_vs_cold);
  cli.metrics().gauge("recovery_replay_vs_legacy").add(replay_vs_legacy);
  cli.dump_metrics();
  // Replay must beat the legacy restart 2x over and stay within 2x of the
  // bulk-load floor.
  return (replay_vs_legacy >= 2.0 && replay_vs_cold >= 0.5) ? 0 : 1;
}
