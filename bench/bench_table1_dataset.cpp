// Table 1: summary of collected data per appstore — apps on first/last day,
// new apps per day, total downloads on first/last day, daily downloads.
// Paper-scale values are reproduced per configured scale (divide the paper's
// numbers by the scale factors to compare).
#include "common.hpp"

#include "core/study.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_table1_dataset",
                       "Table 1: dataset summary per monitored appstore");
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading(
      "Table 1 — Summary of collected data",
      "Anzhi 58,423->60,196 apps / 1,396M->2,816M dl; AppChina 33,183->55,357 / "
      "1,033M->2,623M; 1Mobile 128,455->156,221 / 367M->453M; SlideMe(free+paid) "
      "16,902->22,184 / 63.1M->96.9M");

  std::printf("scales: apps x%g, downloads x%g (multiply by 1/scale for paper units)\n\n",
              config.app_scale, config.download_scale);

  report::Table table({"store", "apps first", "apps last", "new apps/day",
                       "downloads first", "downloads last", "daily downloads"});
  report::Series series;
  series.name = "table1";
  series.columns = {"apps_first", "apps_last", "new_apps_per_day", "downloads_first",
                    "downloads_last", "daily_downloads"};

  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    const auto summary = study.dataset_summary();
    table.row({summary.store, util::with_thousands(summary.apps_first_day),
               util::with_thousands(summary.apps_last_day),
               report::fixed(summary.new_apps_per_day, 1),
               util::human_count(static_cast<double>(summary.downloads_first_day)),
               util::human_count(static_cast<double>(summary.downloads_last_day)),
               util::human_count(summary.daily_downloads)});
    series.add({static_cast<double>(summary.apps_first_day),
                static_cast<double>(summary.apps_last_day), summary.new_apps_per_day,
                static_cast<double>(summary.downloads_first_day),
                static_cast<double>(summary.downloads_last_day), summary.daily_downloads});
  }
  benchx::print_table(table);
  report::export_all({series}, "table1");
  return 0;
}
