// Fig. 15: percentage of total paid revenue, of paid apps and of developers
// per category. Paper: music contributes 67.7% of revenue from only 1.6% of
// apps; games 19.7%; four categories (music, games, utilities, productivity)
// hold 95% of the revenue; e-books hold 33.2% of apps but 0.1% of revenue.
#include "common.hpp"

#include "pricing/income.hpp"
#include "stats/correlation.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig15_category_revenue",
                       "Fig. 15: revenue comes from few categories");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 15 — Revenue comes from few categories",
                        "music 67.7% of revenue from 1.6% of apps; top-4 categories = "
                        "95% of revenue; e-books 33.2% of apps but 0.1% of revenue");

  const auto generated = synth::generate(synth::slideme(), config);
  const auto breakdown = pricing::category_revenue_breakdown(*generated.store);

  report::Table table({"category", "revenue %", "apps %", "developers %"});
  report::Series series{"category_revenue",
                        {"category_index", "revenue_percent", "apps_percent",
                         "developers_percent"},
                        {}};
  std::vector<double> revenue_percents;
  std::vector<double> apps_percents;
  std::vector<double> developer_percents;
  double top4 = 0.0;
  std::size_t shown = 0;
  for (const auto& row : breakdown) {
    table.row({row.name, report::fixed(row.revenue_percent, 1),
               report::fixed(row.apps_percent, 1), report::fixed(row.developers_percent, 1)});
    series.add({static_cast<double>(shown), row.revenue_percent, row.apps_percent,
                row.developers_percent});
    revenue_percents.push_back(row.revenue_percent);
    apps_percents.push_back(row.apps_percent);
    developer_percents.push_back(row.developers_percent);
    if (shown < 4) top4 += row.revenue_percent;
    ++shown;
  }
  benchx::print_table(table);
  std::printf("top-4 categories hold %.1f%% of revenue (paper: 95%%)\n", top4);
  std::printf("Pearson(revenue%%, apps%%) = %.3f (paper: 0.014)\n",
              stats::pearson(revenue_percents, apps_percents));
  std::printf("Pearson(revenue%%, developers%%) = %.3f (paper: 0.198)\n",
              stats::pearson(revenue_percents, developer_percents));
  report::export_all({series}, "fig15");
  return 0;
}
