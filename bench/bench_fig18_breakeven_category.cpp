// Fig. 18: break-even ad income per download by app category (Eq. 7 computed
// within each category).
// Paper: music is the least ads-friendly (~$1.60 needed per download), while
// wallpapers and e-books need only ~$0.002; fun/games sit around $0.04.
#include "common.hpp"

#include "pricing/breakeven.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig18_breakeven_category",
                       "Fig. 18: break-even ad income per category");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 18 — Some categories favour the ad-based strategy",
                        "music needs ~$1.60/download to break even; wallpapers and "
                        "e-books only ~$0.002; games ~$0.04");

  const auto generated = synth::generate(synth::slideme(), config);
  auto rows = pricing::breakeven_by_category(*generated.store);

  // Rescale for the paid/free simulation-resolution mismatch (see Fig. 17).
  const double normalization = config.download_scale / config.paid_download_scale;
  for (auto& row : rows) row.breakeven_dollars *= normalization;

  report::Table table({"category", "break-even $/download"});
  report::Series series{"breakeven_category", {"category_index", "breakeven"}, {}};
  double index = 0.0;
  for (const auto& row : rows) {
    table.row({row.name, "$" + report::fixed(row.breakeven_dollars, 4)});
    series.add({index, row.breakeven_dollars});
    index += 1.0;
  }
  benchx::print_table(table);
  if (rows.size() >= 2 && rows.back().breakeven_dollars > 0) {
    std::printf("spread: %.0fx between the most and least ad-hostile categories "
                "(paper: ~800x)\n",
                rows.front().breakeven_dollars / rows.back().breakeven_dollars);
  }
  report::export_all({series}, "fig18");
  return 0;
}
