// Fig. 9: Eq.-6 distance of each model from the measured data, for the first
// and last crawl day of AppChina, Anzhi and 1Mobile.
// Paper: APP-CLUSTERING approximates the data up to 7.2x closer than ZIPF
// and up to 6.4x closer than ZIPF-at-most-once, on every store and day.
#include "common.hpp"

#include "fit/sweep.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig9_model_distance",
                       "Fig. 9: model distance from measured data, first/last day", 0.02, 1e-4);
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading("Fig. 9 — APP-CLUSTERING has the smallest distance",
                        "APP-CLUSTERING up to 7.2x closer than ZIPF and 6.4x closer "
                        "than ZIPF-at-most-once, for first and last crawl days");

  fit::SweepOptions options;
  options.zr_grid = {1.0, 1.2, 1.4, 1.6, 1.8};
  options.p_grid = {0.85, 0.9, 0.95};
  options.zc_grid = {1.2, 1.4, 1.6};
  options.seed = cli.seed() + 2;
  options.threads = cli.threads();

  report::Table table({"store", "day", "ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING",
                       "vs ZIPF", "vs AMO"});
  report::Series series{"distances",
                        {"store_index", "day", "zipf", "amo", "clustering"},
                        {}};

  const std::vector<synth::StoreProfile> profiles = {synth::appchina(), synth::anzhi(),
                                                     synth::one_mobile()};
  double store_index = 0.0;
  for (const auto& profile : profiles) {
    const auto generated = synth::generate(profile, config);
    for (const bool last_day : {false, true}) {
      const market::Day day = last_day ? profile.crawl_days : 0;
      const auto measured =
          synth::downloads_by_rank_at_day(*generated.store, day, market::Pricing::kFree);
      if (measured.empty() || measured.front() <= 0) continue;
      const auto users = static_cast<std::uint64_t>(measured.front());
      const auto clusters = static_cast<std::uint32_t>(generated.store->categories().size());

      const double zipf =
          fit::fit_model(models::ModelKind::kZipf, measured, users, clusters, options)
              .distance;
      const double amo = fit::fit_model(models::ModelKind::kZipfAtMostOnce, measured, users,
                                        clusters, options)
                             .distance;
      const double clustering = fit::fit_model(models::ModelKind::kAppClustering, measured,
                                               users, clusters, options)
                                    .distance;

      table.row({profile.name, last_day ? "last" : "first", report::fixed(zipf, 3),
                 report::fixed(amo, 3), report::fixed(clustering, 3),
                 report::fixed(clustering > 0 ? zipf / clustering : 0.0, 1) + "x",
                 report::fixed(clustering > 0 ? amo / clustering : 0.0, 1) + "x"});
      series.add({store_index, static_cast<double>(day), zipf, amo, clustering});
    }
    store_index += 1.0;
  }
  benchx::print_table(table);
  report::export_all({series}, "fig9");
  return 0;
}
