// Ablation: cache replacement policies under the APP-CLUSTERING workload.
//
// §7 concludes that "new replacement policies should be used, taking into
// account the clustering-based user behavior". This bench quantifies the
// headroom: LRU vs FIFO vs LFU vs RANDOM vs CLUSTER-LRU (our category-aware
// policy that evicts from the least-recently-active category) on identical
// Fig.-19 request streams.
#include "common.hpp"

#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_ablation_cache_policies",
                       "Ablation: replacement policies under clustering workloads");
  auto scale = cli.raw().f64("cache-scale", 0.05, "fraction of the paper's 60k-app setup");
  cli.parse(argc, argv);

  benchx::print_heading("Ablation — replacement policy under APP-CLUSTERING",
                        "the paper calls for clustering-aware replacement; CLUSTER-LRU "
                        "should recover part of the ZIPF-workload hit ratio");

  const std::vector<cache::PolicyKind> policies = {
      cache::PolicyKind::kLru, cache::PolicyKind::kFifo, cache::PolicyKind::kLfu,
      cache::PolicyKind::kRandom, cache::PolicyKind::kClusterLru};

  // One shared APP-CLUSTERING stream, every policy×size simulation its own
  // task (core::cache_policy_study) — the stream is no longer regenerated
  // per policy.
  core::CacheStudyOptions study_options;
  study_options.scale = *scale;
  study_options.seed = cli.seed();
  study_options.metrics = &cli.metrics();
  study_options.threads = cli.threads();
  const auto results =
      core::cache_policy_study(models::ModelKind::kAppClustering, policies, study_options);

  std::vector<std::string> header = {"cache size %"};
  for (const auto policy : policies) header.emplace_back(to_string(policy));
  report::Table table(header);
  report::Series series{"policy_hit_ratio",
                        {"cache_percent", "lru", "fifo", "lfu", "random", "cluster_lru"},
                        {}};
  for (std::size_t i = 0; i < results[0].points.size(); ++i) {
    std::vector<std::string> row = {report::fixed(static_cast<double>(i + 1), 0) + "%"};
    std::vector<double> csv_row = {static_cast<double>(i + 1)};
    for (const auto& result : results) {
      row.push_back(report::percent(result.points[i].hit_ratio));
      csv_row.push_back(result.points[i].hit_ratio);
    }
    table.row(std::move(row));
    series.add(std::move(csv_row));
  }
  benchx::print_table(table);
  report::export_all({series}, "ablation_cache_policies");
  cli.dump_metrics();
  return 0;
}
