// Fig. 16: (a) CDF of the number of free/paid apps per developer; (b) CDF of
// the number of unique categories per developer.
// Paper: 60% of free-app developers and 70% of paid-app developers ship a
// single app; 95% fewer than 10; 75%/85% stick to one category, 99% to <=5.
// Strategy mix (§6.3): 75% free-only, 15% paid-only, 10% both.
#include "common.hpp"

#include "pricing/strategies.hpp"
#include "stats/ecdf.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig16_developer_strategies",
                       "Fig. 16: developers create few apps in few categories");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 16 — Few apps, few categories per developer",
                        "60-70% of developers offer a single app, 95% < 10; 75-85% "
                        "focus on one category, 99% on <= 5; strategies 75/15/10");

  const auto generated = synth::generate(synth::slideme(), config);
  const auto shares = pricing::strategy_shares(*generated.store);
  std::printf("strategies: free-only %.1f%%  paid-only %.1f%%  both %.1f%%  "
              "(paper: 75 / 15 / 10)\n\n",
              100.0 * shares.free_only, 100.0 * shares.paid_only, 100.0 * shares.both);

  std::vector<report::Series> all_series;
  for (const auto pricing : {market::Pricing::kFree, market::Pricing::kPaid}) {
    const bool paid = pricing == market::Pricing::kPaid;
    const std::string label = paid ? "paid" : "free";

    const stats::Ecdf apps(pricing::apps_per_developer(*generated.store, pricing));
    const stats::Ecdf categories(
        pricing::categories_per_developer(*generated.store, pricing));

    report::Table table({label + " devs", "P[=1 app]", "P[<10 apps]", "P[1 category]",
                         "P[<=5 categories]"});
    table.row({std::to_string(apps.size()), report::percent(apps.at(1.0)),
               report::percent(apps.at(9.0)), report::percent(categories.at(1.0)),
               report::percent(categories.at(5.0))});
    benchx::print_table(table);

    report::Series apps_series{"apps_per_dev_" + label, {"apps", "cdf"}, {}};
    for (const auto& point : apps.steps()) apps_series.add({point.x, point.f});
    report::Series category_series{"categories_per_dev_" + label, {"categories", "cdf"}, {}};
    for (const auto& point : categories.steps()) category_series.add({point.x, point.f});
    all_series.push_back(std::move(apps_series));
    all_series.push_back(std::move(category_series));
  }
  report::export_all(all_series, "fig16");
  return 0;
}
