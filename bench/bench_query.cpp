// Online query engine acceptance bench (ISSUE 6).
//
// Runs each /api/query aggregate kind through the query engine twice under a
// user-selective filter: once with the planner free to choose CSR index
// scans (the production configuration) and once with index scans disabled so
// every clause falls back to a full column scan (the naive baseline). The
// planned path must beat the naive path by >= 2x on the seeded store — that
// is the index-filter payoff the planner exists for. Latency percentiles per
// kind and the derived speedups land in results/BENCH_query.json (and the
// metrics registry via --metrics-out, like bench_serving).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <vector>

#include "common.hpp"
#include "load/report.hpp"
#include "query/engine.hpp"

namespace {

using namespace appstore;

struct KindReport {
  std::string kind;
  double planned_p50_us = 0.0;
  double planned_p99_us = 0.0;
  double naive_p50_us = 0.0;
  double naive_p99_us = 0.0;
  double speedup = 0.0;  ///< naive_p50 / planned_p50
};

[[nodiscard]] double percentile_us(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[rank] * 1e6;
}

[[nodiscard]] std::vector<double> time_runs(const query::QueryEngine& engine,
                                            query::QuerySpec spec, std::uint32_t user_count,
                                            std::size_t reps) {
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    // Rotate the selected user so no run can ride a warm allocation of the
    // previous one; the filter stays equally selective.
    spec.filter = query::parse_filter(
        util::format("user == {}", user_count == 0 ? 0 : i % user_count));
    const auto start = std::chrono::steady_clock::now();
    const query::QueryResult result = engine.run(spec, /*day=*/1 << 20);
    (void)result;
    const auto stop = std::chrono::steady_clock::now();
    seconds.push_back(std::chrono::duration<double>(stop - start).count());
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_query",
                       "planned (index-scan) vs naive full-scan execution of the four "
                       "/api/query aggregate kinds under a user-selective filter");
  auto reps = cli.raw().u64("reps", 40, "timed runs per kind and configuration");
  auto out_path =
      cli.raw().str("out", "results/BENCH_query.json", "report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "query: predicate planner over the columnar spine",
      "per-user analytics over millions of app-usage events needs index scans, "
      "not full-log scans (PAPERS.md: mining behavioral patterns at scale)");

  // Comments on: category_affinity runs over the comment log.
  synth::GeneratorConfig config = cli.config();
  config.comments = true;
  const auto generated = synth::generate(synth::anzhi(), config);
  const market::AppStore& store = *generated.store;

  query::QueryOptions planned_options;
  planned_options.threads = cli.threads();
  const query::QueryEngine planned(store, planned_options, &cli.metrics());

  query::QueryOptions naive_options = planned_options;
  naive_options.allow_index_scan = false;
  const query::QueryEngine naive(store, naive_options, nullptr);

  const std::uint32_t user_count = store.user_count();
  const std::array<query::AggregateKind, query::kAggregateKindCount> kinds = {
      query::AggregateKind::kTopKDownloads, query::AggregateKind::kParetoShare,
      query::AggregateKind::kCategoryAffinity, query::AggregateKind::kRankDownloadCurve};

  std::vector<KindReport> reports;
  for (const query::AggregateKind kind : kinds) {
    query::QuerySpec spec;
    spec.kind = kind;
    const std::vector<double> planned_s =
        time_runs(planned, spec, user_count, static_cast<std::size_t>(*reps));
    const std::vector<double> naive_s =
        time_runs(naive, spec, user_count, static_cast<std::size_t>(*reps));
    KindReport report;
    report.kind = std::string(query::to_string(kind));
    report.planned_p50_us = percentile_us(planned_s, 0.50);
    report.planned_p99_us = percentile_us(planned_s, 0.99);
    report.naive_p50_us = percentile_us(naive_s, 0.50);
    report.naive_p99_us = percentile_us(naive_s, 0.99);
    report.speedup = report.planned_p50_us > 0.0
                         ? report.naive_p50_us / report.planned_p50_us
                         : 0.0;
    reports.push_back(report);
  }

  report::Table table({"kind", "planned p50 (us)", "planned p99 (us)", "naive p50 (us)",
                       "naive p99 (us)", "speedup"});
  double headline = 0.0;
  for (const KindReport& report : reports) {
    table.row({report.kind, util::format("{:.1f}", report.planned_p50_us),
               util::format("{:.1f}", report.planned_p99_us),
               util::format("{:.1f}", report.naive_p50_us),
               util::format("{:.1f}", report.naive_p99_us),
               util::format("{:.2f}", report.speedup)});
    if (report.kind == "top_k_downloads") headline = report.speedup;
  }
  benchx::print_table(table);
  std::printf("planned-vs-full-scan speedup (top_k_downloads): %.2fx\n", headline);

  crawlersim::JsonArray kinds_json;
  for (const KindReport& report : reports) {
    kinds_json.push_back(crawlersim::json_object(
        {{"kind", report.kind},
         {"planned_p50_us", report.planned_p50_us},
         {"planned_p99_us", report.planned_p99_us},
         {"naive_p50_us", report.naive_p50_us},
         {"naive_p99_us", report.naive_p99_us},
         {"speedup", report.speedup}}));
  }
  const crawlersim::Json document = crawlersim::json_object(
      {{"bench", "query"},
       {"store", store.name()},
       {"seed", cli.seed()},
       {"reps", *reps},
       {"download_rows", static_cast<std::uint64_t>(store.download_log().size())},
       {"comment_rows", static_cast<std::uint64_t>(store.comment_log().size())},
       {"users", static_cast<std::uint64_t>(user_count)},
       {"kinds", crawlersim::Json(std::move(kinds_json))},
       {"speedup", headline}});
  if (load::write_json_file(document, *out_path)) {
    std::printf("wrote %s\n", out_path->c_str());
  }

  cli.metrics().gauge("query_speedup").add(headline);
  cli.dump_metrics();
  return headline >= 2.0 ? 0 : 1;
}
