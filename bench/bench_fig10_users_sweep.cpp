// Fig. 10: distance from measured data as a function of the simulated user
// count, expressed as a fraction of the most popular app's downloads.
// Paper: the minimum sits where the user count equals the downloads of the
// most popular app, for first and last days of AppChina, Anzhi and 1Mobile.
#include "common.hpp"

#include "fit/sweep.hpp"
#include "models/app_clustering_model.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig10_users_sweep",
                       "Fig. 10: choosing the right number of users", 0.02, 1e-4);
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading("Fig. 10 — Top-app downloads estimate the user count",
                        "distance is minimized when U is close to the downloads of "
                        "the most popular app (ratio ~1)");

  const std::vector<double> ratios = {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};

  report::Table table({"store", "day", "best ratio", "min distance", "distance@0.1",
                       "distance@50"});
  std::vector<report::Series> all_series;

  const std::vector<synth::StoreProfile> profiles = {synth::appchina(), synth::anzhi(),
                                                     synth::one_mobile()};
  for (const auto& profile : profiles) {
    const auto generated = synth::generate(profile, config);
    for (const bool last_day : {false, true}) {
      const market::Day day = last_day ? profile.crawl_days : 0;
      const auto measured =
          synth::downloads_by_rank_at_day(*generated.store, day, market::Pricing::kFree);
      if (measured.empty() || measured.front() <= 0) continue;

      // Model parameters: the store's fitted APP-CLUSTERING configuration,
      // with the store's actual category layout restricted to the apps
      // listed on this day (the measured curve covers exactly those).
      models::ModelParams params = generated.free_params;
      std::vector<std::uint32_t> assignment;
      for (const auto app_id : generated.free_rank_order) {
        const auto& app = generated.store->app(app_id);
        if (app.released <= day) assignment.push_back(app.category.value);
      }
      const auto layout = models::ClusterLayout::from_assignment(std::move(assignment));
      fit::UsersSweepOptions sweep_options;
      sweep_options.seed = cli.seed() + 3;
      sweep_options.analytic = false;
      sweep_options.replicates = 3;
      sweep_options.layout = &layout;
      sweep_options.threads = cli.threads();
      const auto points = fit::sweep_users(models::ModelKind::kAppClustering, measured,
                                           params, ratios, sweep_options);

      std::size_t best = 0;
      for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].distance < points[best].distance) best = i;
      }
      table.row({profile.name, last_day ? "last" : "first",
                 report::fixed(points[best].user_ratio, 2),
                 report::fixed(points[best].distance, 3),
                 report::fixed(points.front().distance, 3),
                 report::fixed(points.back().distance, 3)});

      report::Series series;
      series.name = util::format("users_sweep_{}_{}", profile.name,
                                 last_day ? "last" : "first");
      series.columns = {"user_ratio", "users", "distance"};
      for (const auto& point : points) {
        series.add({point.user_ratio, static_cast<double>(point.users), point.distance});
      }
      all_series.push_back(std::move(series));
    }
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig10");
  return 0;
}
