// Fig. 7: CDF of per-user temporal affinity for depths 1-3.
// Paper: medians 0.5 (d1), 0.58 (d2), 0.67 (d3); for ~50% of users the
// affinity far exceeds the random-walk baselines (0.14 / 0.28 / 0.42).
#include "common.hpp"

#include "core/study.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig7_affinity_cdf", "Fig. 7: per-user affinity CDF");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.comments = true;

  benchx::print_heading("Fig. 7 — Most users exhibit strong temporal affinity",
                        "median affinity 0.50 / 0.58 / 0.67 for depths 1-3, all far "
                        "above the random-walk baselines 0.14 / 0.28 / 0.42");

  synth::StoreProfile profile = synth::anzhi();
  profile.commenter_fraction = 0.10;
  const core::EcosystemStudy study(profile, config);
  const auto strings = study.category_strings();

  report::Table table({"depth", "users", "median", "P25", "P75", "random walk",
                       "share above random"});
  std::vector<report::Series> all_series;

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    const auto values = affinity::per_user_affinity(strings, depth);
    const double random_walk = study.random_walk_affinity(depth);
    const stats::Ecdf cdf(values);
    table.row({std::to_string(depth), std::to_string(values.size()),
               report::fixed(cdf.inverse(0.5), 2), report::fixed(cdf.inverse(0.25), 2),
               report::fixed(cdf.inverse(0.75), 2), report::fixed(random_walk, 2),
               report::percent(1.0 - cdf.at(random_walk))});

    report::Series series;
    series.name = util::format("affinity_cdf_depth{}", depth);
    series.columns = {"affinity", "cdf"};
    for (const auto& point : cdf.steps()) series.add({point.x, point.f});
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig7");
  return 0;
}
