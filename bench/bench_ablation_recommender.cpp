// Ablation: recommendation strategies under clustering-driven behaviour
// (§7 "Better recommendation systems").
//
// Generates per-user download sequences with APP-CLUSTERING, hides each
// user's last download (leave-last-out) and measures hit@k for four
// recommenders. The paper's argument: a recommender exploiting the temporal
// affinity to categories ("apps related to the most recent interests of a
// user") should beat both global popularity and plain collaborative
// filtering; the HYBRID row quantifies the combination.
#include "common.hpp"

#include "models/app_clustering_model.hpp"
#include "recommend/recommender.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_ablation_recommender",
                       "Ablation: recommender strategies under the clustering effect");
  auto users = cli.raw().u64("users", 4000, "simulated users");
  auto apps = cli.raw().u64("apps", 1500, "apps in the catalog");
  auto top_k = cli.raw().u64("topk", 10, "recommendation list length");
  cli.parse(argc, argv);

  benchx::print_heading("Ablation — recommenders vs the clustering effect",
                        "§7: suggesting apps from the user's recent categories should "
                        "beat popularity-only and plain collaborative filtering");

  models::ModelParams params;
  params.app_count = static_cast<std::uint32_t>(*apps);
  params.user_count = *users;
  params.downloads_per_user = 12.0;
  params.zr = 1.3;
  params.zc = 1.3;
  params.p = 0.92;
  params.cluster_count = 30;
  const auto layout = models::ClusterLayout::round_robin(params.app_count, 30);
  const models::AppClusteringModel model(params, layout);
  util::Rng rng(cli.seed());
  const auto workload = model.generate(rng, true);

  recommend::Dataset dataset;
  dataset.app_count = params.app_count;
  dataset.app_category.resize(params.app_count);
  for (std::uint32_t a = 0; a < params.app_count; ++a) {
    dataset.app_category[a] = layout.cluster_of(a);
  }
  dataset.user_sequences = workload.user_sequences();

  std::vector<std::uint32_t> held_out;
  const recommend::Dataset truncated = recommend::leave_last_out(dataset, held_out);

  recommend::PopularityRecommender popularity;
  recommend::CategoryRecommender category;
  recommend::ItemCfRecommender item_cf;
  recommend::HybridRecommender hybrid;
  std::vector<recommend::Recommender*> recommenders = {&popularity, &category, &item_cf,
                                                       &hybrid};

  report::Table table({"recommender", util::format("hit@{}", *top_k), "users"});
  report::Series series{"recommender_hit_rate", {"recommender_index", "hit_rate"}, {}};
  double index = 0.0;
  for (auto* recommender : recommenders) {
    recommender->train(truncated);
    const auto result = recommend::evaluate(*recommender, truncated, held_out, *top_k);
    table.row({std::string(recommender->name()), report::percent(result.hit_rate()),
               std::to_string(result.users_evaluated)});
    series.add({index, result.hit_rate()});
    index += 1.0;
  }
  benchx::print_table(table);
  report::export_all({series}, "ablation_recommender");
  return 0;
}
