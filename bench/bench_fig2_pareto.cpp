// Fig. 2: CDF of the percentage of downloads vs normalized app rank.
// Paper: 10% of apps account for ~90% (AppChina/Anzhi), >85% (1Mobile),
// >70% (SlideMe) of downloads; the top 1% holds 30-70%.
#include "common.hpp"

#include "core/study.hpp"
#include "stats/pareto.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig2_pareto", "Fig. 2: Pareto effect of app downloads");
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading("Fig. 2 — A few apps account for most of the downloads",
                        "10% of the apps account for 70-90% of downloads; the top 1% "
                        "alone holds 30-70%");

  report::Table table(
      {"store", "top 1%", "top 5%", "top 10%", "top 20%", "top 50%"});
  std::vector<report::Series> all_series;

  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    table.row({profile.name, report::percent(study.pareto_share(0.01)),
               report::percent(study.pareto_share(0.05)),
               report::percent(study.pareto_share(0.10)),
               report::percent(study.pareto_share(0.20)),
               report::percent(study.pareto_share(0.50))});

    report::Series series;
    series.name = "pareto_" + profile.name;
    series.columns = {"rank_percent", "download_percent"};
    for (const auto& point : study.pareto_curve()) {
      series.add({point.rank_percent, point.download_percent});
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig2");
  return 0;
}
