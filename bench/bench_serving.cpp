// Serving-architecture comparison (ISSUE 5 acceptance bench).
//
// Drives an identical closed-loop socket schedule (8 persistent clients,
// cached endpoints: /api/meta + /api/apps pages) against the same generated
// store served two ways:
//   baseline  — ServerMode::kThreadPerConnection, response cache off (the
//               pre-PR-5 architecture);
//   candidate — ServerMode::kWorkerPool + per-day response cache.
// Prints both runs and the throughput speedup, and records the comparison in
// results/BENCH_serving.json (see docs/serving.md for how to read it).
#include <cmath>
#include <memory>

#include "common.hpp"
#include "crawler/service.hpp"
#include "load/harness.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"
#include "report/table.hpp"

namespace {

using namespace appstore;

constexpr double kUnlimited = 1e12;  // effectively disable rate limiting

[[nodiscard]] load::RunReport run_against(const market::AppStore& store,
                                          const load::Schedule& schedule,
                                          net::ServerMode mode, bool cache,
                                          obs::Registry* metrics,
                                          std::uint64_t* cache_hits,
                                          std::uint64_t* cache_misses) {
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = kUnlimited;
  policy.burst = kUnlimited;
  policy.server_mode = mode;
  policy.cache_responses = cache;
  crawlersim::AppstoreService service(store, policy);
  service.set_day(60);

  load::RunOptions options;
  options.service = &service;
  options.over_sockets = true;
  options.metrics = metrics;
  load::RunReport report = load::run(schedule, options);
  if (cache_hits != nullptr || cache_misses != nullptr) {
    const obs::Snapshot snapshot = service.metrics().snapshot();
    const auto* hit = snapshot.find_counter("service_response_cache_total", "hit");
    const auto* miss = snapshot.find_counter("service_response_cache_total", "miss");
    if (cache_hits != nullptr) *cache_hits = hit != nullptr ? hit->value : 0;
    if (cache_misses != nullptr) *cache_misses = miss != nullptr ? miss->value : 0;
  }
  service.stop();
  return report;
}

void add_row(report::Table& table, const char* name, const load::RunReport& report) {
  table.row({name, util::format("{:.0f}", report.throughput_rps),
                 util::format("{:.0f}", report.latency[0].p50 * 1e6),
                 util::format("{:.0f}", report.latency[0].p99 * 1e6),
                 util::format("{:.0f}", report.latency[1].p50 * 1e6),
                 util::format("{:.0f}", report.latency[1].p99 * 1e6),
                 std::to_string(report.totals.shed + report.totals.transport_errors)});
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_serving",
                       "worker-pool + response-cache server vs thread-per-connection "
                       "baseline under identical closed-loop load",
                       // Large app scale on purpose: the directory scan must
                       // dominate the uncached request so the comparison
                       // measures serving architecture, not socket syscalls.
                       1.0, 1e-5);
  auto clients = cli.raw().u64("clients", 8, "concurrent load clients");
  auto requests = cli.raw().u64("requests", 400, "requests per client");
  auto out_path = cli.raw().str("out", "results/BENCH_serving.json",
                                "comparison report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "serving: worker pool + per-day response cache",
      "the measurement substrate is a daily crawl of store front-ends (§2.1-2.2); "
      "serving that crawl fast is the repo's north star");

  const auto generated = synth::generate(synth::anzhi(), cli.config());
  const market::AppStore& store = *generated.store;

  load::ScheduleOptions schedule_options;
  schedule_options.seed = cli.seed();
  schedule_options.clients = static_cast<std::uint32_t>(*clients);
  schedule_options.requests_per_client = static_cast<std::uint32_t>(*requests);
  // Cached endpoints only: the acceptance comparison targets the fast path.
  schedule_options.mix.meta_weight = 0.2;
  schedule_options.mix.apps_weight = 0.8;
  schedule_options.mix.app_weight = 0.0;
  schedule_options.mix.comments_weight = 0.0;
  schedule_options.mix.per_page = 100;
  schedule_options.mix.app_count =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(store.apps().size()));
  // A handful of hot directory pages, requested over and over — the shape of
  // a daily crawl where every client walks the same front pages. More pages
  // would only measure cold-miss cost, which is the baseline's cost anyway.
  schedule_options.mix.directory_pages = std::min<std::uint32_t>(
      20, std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(
                     (store.apps().size() + schedule_options.mix.per_page - 1) /
                     schedule_options.mix.per_page)));
  const load::Schedule schedule = load::build_schedule(schedule_options);

  load::ServingComparison comparison;
  comparison.baseline =
      run_against(store, schedule, net::ServerMode::kThreadPerConnection,
                  /*cache=*/false, nullptr, nullptr, nullptr);
  comparison.worker_pool =
      run_against(store, schedule, net::ServerMode::kWorkerPool,
                  /*cache=*/true, &cli.metrics(), &comparison.cache_hits,
                  &comparison.cache_misses);
  comparison.speedup = comparison.baseline.throughput_rps > 0.0
                           ? comparison.worker_pool.throughput_rps /
                                 comparison.baseline.throughput_rps
                           : 0.0;
  comparison.notes =
      "closed loop over real sockets; identical seeded schedule; latency in the table "
      "is microseconds";

  report::Table table({"server", "rps", "meta p50us", "meta p99us", "apps p50us",
                       "apps p99us", "shed+err"});
  add_row(table, "thread-per-connection", comparison.baseline);
  add_row(table, "worker-pool + cache", comparison.worker_pool);
  benchx::print_table(table);
  std::printf("speedup: %.2fx (cache: %llu hits / %llu misses)\n", comparison.speedup,
              static_cast<unsigned long long>(comparison.cache_hits),
              static_cast<unsigned long long>(comparison.cache_misses));

  cli.metrics().gauge("serving_speedup").set(comparison.speedup);
  load::write_json_file(load::to_json(comparison), *out_path);
  cli.dump_metrics();
  return 0;
}
