// Fig. 11: download distributions of SlideMe free vs paid apps.
// Paper: free apps show the usual truncated curve (slope ~0.85); paid apps
// follow a clean power law (slope ~1.72) with no significant deviations —
// users are more selective when paying.
#include "common.hpp"

#include "core/study.hpp"
#include "stats/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig11_paid_free", "Fig. 11: paid apps follow a clean Zipf");
  cli.parse(argc, argv);
  auto config = cli.config();
  // SlideMe is the smallest store; keep enough paid apps after scaling.
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 11 — Paid apps follow a clear Zipf distribution",
                        "free trunk slope ~0.85 with truncated ends; paid ~1.72, clean "
                        "power law");

  const core::EcosystemStudy study(synth::slideme(), config);

  report::Table table({"segment", "trunk exponent", "R^2", "head ratio", "tail ratio"});
  std::vector<report::Series> all_series;
  for (const auto pricing : {market::Pricing::kFree, market::Pricing::kPaid}) {
    const bool paid = pricing == market::Pricing::kPaid;
    const auto report = study.popularity_fit(pricing);
    table.row({paid ? "paid" : "free", report::fixed(report.trunk.exponent, 2),
               report::fixed(report.trunk.r_squared, 3),
               report::fixed(report.head_ratio, 3), report::fixed(report.tail_ratio, 3)});

    report::Series series;
    series.name = paid ? "rank_downloads_paid" : "rank_downloads_free";
    series.columns = {"rank", "downloads"};
    const auto ranks = study.store().downloads_by_rank(pricing);
    std::size_t step = 1;
    for (std::size_t i = 0; i < ranks.size(); i += step) {
      series.add({static_cast<double>(i + 1), ranks[i]});
      if (i + 1 >= 100) step = std::max<std::size_t>(1, (i + 1) / 100);
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig11");
  return 0;
}
