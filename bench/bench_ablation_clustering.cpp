// Ablation: sensitivity of the APP-CLUSTERING signature to its parameters.
//
// Sweeps the clustering probability p and the per-cluster exponent zc and
// reports (i) the trunk-relative tail truncation of the generated curve and
// (ii) the sequence-level category affinity — the two observable signatures
// the paper ties to the clustering effect. Also contrasts cluster layouts
// (round-robin vs contiguous vs random), a design choice DESIGN.md calls out.
#include "common.hpp"

#include "models/app_clustering_model.hpp"
#include "stats/powerlaw.hpp"

namespace {

using namespace appstore;

struct Signature {
  double tail_ratio;
  double affinity;
};

Signature measure(const models::AppClusteringModel& model, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto workload = model.generate(rng, true);

  const auto report = stats::analyze_truncation(workload.by_rank());

  std::uint64_t same = 0;
  std::uint64_t pairs = 0;
  const auto& layout = model.layout();
  for (std::uint32_t u = 0; u < workload.sequences.user_count(); ++u) {
    const auto sequence = workload.sequence_view(u);
    for (std::size_t i = 1; i < sequence.size(); ++i) {
      same += layout.cluster_of(sequence[i].app) == layout.cluster_of(sequence[i - 1].app) ? 1 : 0;
      ++pairs;
    }
  }
  return Signature{report.tail_ratio,
                   pairs == 0 ? 0.0 : static_cast<double>(same) / static_cast<double>(pairs)};
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_ablation_clustering",
                       "Ablation: p / zc / layout sensitivity of APP-CLUSTERING");
  cli.parse(argc, argv);

  benchx::print_heading("Ablation — what creates the clustering signature",
                        "raising p deepens tail truncation and sequence affinity; the "
                        "layout choice is second-order");

  models::ModelParams base;
  base.app_count = 3000;
  base.user_count = 6000;
  base.downloads_per_user = 40.0;
  base.zr = 1.6;
  base.zc = 1.4;
  base.cluster_count = 30;

  // Sweep p.
  report::Table p_table({"p", "tail ratio", "seq affinity"});
  report::Series p_series{"p_sweep", {"p", "tail_ratio", "affinity"}, {}};
  for (const double p : {0.0, 0.5, 0.8, 0.9, 0.95, 0.99}) {
    models::ModelParams params = base;
    params.p = p;
    const models::AppClusteringModel model(
        params, models::ClusterLayout::round_robin(params.app_count, params.cluster_count));
    const Signature sig = measure(model, cli.seed());
    p_table.row({report::fixed(p, 2), report::fixed(sig.tail_ratio, 3),
                 report::fixed(sig.affinity, 3)});
    p_series.add({p, sig.tail_ratio, sig.affinity});
  }
  std::printf("clustering probability p (zc = 1.4):\n");
  benchx::print_table(p_table);

  // Sweep zc.
  report::Table zc_table({"zc", "tail ratio", "seq affinity"});
  report::Series zc_series{"zc_sweep", {"zc", "tail_ratio", "affinity"}, {}};
  for (const double zc : {0.8, 1.0, 1.2, 1.4, 1.6, 1.8}) {
    models::ModelParams params = base;
    params.p = 0.9;
    params.zc = zc;
    const models::AppClusteringModel model(
        params, models::ClusterLayout::round_robin(params.app_count, params.cluster_count));
    const Signature sig = measure(model, cli.seed());
    zc_table.row({report::fixed(zc, 2), report::fixed(sig.tail_ratio, 3),
                  report::fixed(sig.affinity, 3)});
    zc_series.add({zc, sig.tail_ratio, sig.affinity});
  }
  std::printf("per-cluster exponent zc (p = 0.9):\n");
  benchx::print_table(zc_table);

  // Layout comparison.
  report::Table layout_table({"layout", "tail ratio", "seq affinity"});
  report::Series layout_series{"layout_sweep", {"layout_index", "tail_ratio", "affinity"},
                               {}};
  models::ModelParams params = base;
  params.p = 0.9;
  util::Rng layout_rng(cli.seed() + 7);
  const std::vector<std::pair<std::string, models::ClusterLayout>> layouts = [&] {
    std::vector<std::pair<std::string, models::ClusterLayout>> out;
    out.emplace_back("round-robin", models::ClusterLayout::round_robin(
                                        params.app_count, params.cluster_count));
    out.emplace_back("contiguous", models::ClusterLayout::contiguous(
                                       params.app_count, params.cluster_count));
    out.emplace_back("random", models::ClusterLayout::random(params.app_count,
                                                             params.cluster_count,
                                                             layout_rng));
    return out;
  }();
  double layout_index = 0.0;
  for (const auto& [name, layout] : layouts) {
    const models::AppClusteringModel model(params, layout);
    const Signature sig = measure(model, cli.seed());
    layout_table.row({name, report::fixed(sig.tail_ratio, 3),
                      report::fixed(sig.affinity, 3)});
    layout_series.add({layout_index, sig.tail_ratio, sig.affinity});
    layout_index += 1.0;
  }
  std::printf("cluster layout (p = 0.9, zc = 1.4):\n");
  benchx::print_table(layout_table);

  report::export_all({p_series, zc_series, layout_series}, "ablation_clustering");
  return 0;
}
