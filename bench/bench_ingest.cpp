// Ingest-while-serving acceptance bench (ISSUE 7).
//
// One fixed workload, two execution regimes. The workload is a simulated
// daily crawl: `days` ingest batches of `rows-per-day` download events, and
// after each day's data is visible, `queries-per-day` per-user stream scans
// answered with data current as of that day.
//
//   * batch (stop-the-world): the pre-live pipeline — append the day's rows
//     into an EventLog, rebuild the full CSR index, then run the day's
//     queries. Nothing can be answered while the rebuild runs, and each
//     rebuild touches every row ingested so far.
//   * live: a LiveEventLog ingests the same batches on a writer thread while
//     the reader answers the same queries against frontier snapshots —
//     queries for day d start the moment the frontier covers day d, while
//     day d+1 is still being written.
//
// Both regimes compute a per-day checksum over identical data prefixes, so
// the bench doubles as an end-to-end determinism check: any divergence
// between the tiered index and the batch CSR fails the run outright.
//
// Headline: speedup = batch seconds / live seconds for the whole workload.
// The floor is 5x (the acceptance criterion); below it the binary exits
// non-zero. Results land in results/BENCH_ingest.json; --metrics-out mirrors
// the registry like the other load benches.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "events/event_log.hpp"
#include "events/live_log.hpp"
#include "load/report.hpp"
#include "util/rng.hpp"

namespace {

using namespace appstore;

struct Workload {
  std::uint32_t users = 0;
  std::uint64_t days = 0;
  std::uint64_t rows_per_day = 0;
  std::uint64_t queries_per_day = 0;
  /// Per-day ingest batches (user/app/day columns, ordinals store-assigned).
  std::vector<events::EventLog> batches;
};

[[nodiscard]] Workload make_workload(std::uint64_t seed, std::uint32_t users,
                                     std::uint64_t days, std::uint64_t rows_per_day,
                                     std::uint64_t queries_per_day) {
  Workload workload;
  workload.users = users;
  workload.days = days;
  workload.rows_per_day = rows_per_day;
  workload.queries_per_day = queries_per_day;
  workload.batches.reserve(days);
  util::Rng rng(seed);
  for (std::uint64_t day = 0; day < days; ++day) {
    std::vector<std::uint32_t> user(rows_per_day);
    std::vector<std::uint32_t> app(rows_per_day);
    std::vector<std::int32_t> day_column(rows_per_day, static_cast<std::int32_t>(day));
    for (std::uint64_t i = 0; i < rows_per_day; ++i) {
      user[i] = static_cast<std::uint32_t>(rng.below(users));
      app[i] = static_cast<std::uint32_t>(rng.below(4096));
    }
    workload.batches.push_back(events::EventLog::from_columns(
        events::Columns::kDay, std::move(user), std::move(app), std::move(day_column)));
  }
  return workload;
}

/// The user probed by query k of day d — identical in both regimes.
[[nodiscard]] std::uint32_t query_user(const Workload& workload, std::uint64_t day,
                                       std::uint64_t k) {
  std::uint64_t state = day * 0x9e3779b97f4a7c15ull + k;
  return static_cast<std::uint32_t>(util::splitmix64(state) % workload.users);
}

/// One per-user stream scan, folded into a checksum (stream contents and
/// chronological order both matter).
template <typename Stream>
[[nodiscard]] std::uint64_t scan_checksum(const Stream& stream) {
  std::uint64_t checksum = 0;
  for (const events::Event event : stream) {
    checksum = checksum * 31 +
               static_cast<std::uint64_t>(event.app) * 7 +
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(event.day));
  }
  return checksum;
}

struct RegimeResult {
  double seconds = 0.0;
  std::vector<std::uint64_t> day_checksums;
};

[[nodiscard]] RegimeResult run_batch(const Workload& workload) {
  RegimeResult result;
  result.day_checksums.resize(workload.days, 0);
  events::EventLog log(events::Columns::kDay);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t day = 0; day < workload.days; ++day) {
    const events::EventLog& batch = workload.batches[day];
    for (std::size_t i = 0; i < batch.size(); ++i) {
      log.append(batch.user()[i], batch.app()[i], batch.day()[i], 0, 0);
    }
    // Stop the world: every query for this day waits on a full rebuild over
    // everything ingested so far.
    log.build_index(workload.users);
    std::uint64_t checksum = 0;
    for (std::uint64_t k = 0; k < workload.queries_per_day; ++k) {
      checksum ^= scan_checksum(log.stream(query_user(workload, day, k)));
    }
    result.day_checksums[day] = checksum;
  }
  const auto stop = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

[[nodiscard]] RegimeResult run_live(const Workload& workload, std::size_t ingest_threads) {
  RegimeResult result;
  result.day_checksums.resize(workload.days, 0);
  events::LiveOptions options;
  options.max_rows = workload.days * workload.rows_per_day;
  // Round the capacity up to a power-of-two segment multiple.
  options.segment_rows = 1ull << 16;
  options.max_rows =
      (options.max_rows + options.segment_rows - 1) / options.segment_rows *
      options.segment_rows;
  options.max_users = workload.users;
  events::LiveEventLog live(events::Columns::kDay, options);

  const auto start = std::chrono::steady_clock::now();
  std::thread writer([&] {
    for (std::uint64_t day = 0; day < workload.days; ++day) {
      live.append_batch(workload.batches[day],
                        events::IngestOptions{.threads = ingest_threads});
    }
  });
  // The reader serves continuously: queries for day d run the moment the
  // frontier covers day d's block, concurrent with the ingest of day d+1.
  for (std::uint64_t day = 0; day < workload.days; ++day) {
    const std::uint64_t needed = (day + 1) * workload.rows_per_day;
    while (live.frontier() < needed) std::this_thread::yield();
    // Pin exactly day d's prefix: the writer may already have published
    // further, and these queries must answer as of day d.
    const events::FrontierSnapshot view = live.snapshot_at(needed);
    std::uint64_t checksum = 0;
    for (std::uint64_t k = 0; k < workload.queries_per_day; ++k) {
      checksum ^= scan_checksum(view.stream(query_user(workload, day, k)));
    }
    result.day_checksums[day] = checksum;
  }
  writer.join();
  const auto stop = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_ingest",
                       "concurrent ingest+query on the live event store vs the "
                       "stop-the-world EventLog rebuild pipeline");
  auto users = cli.raw().u64("users", 20000, "distinct users in the workload");
  auto days = cli.raw().u64("days", 100, "ingest batches (virtual crawl days)");
  auto rows = cli.raw().u64("rows-per-day", 20000, "download events per day");
  auto queries = cli.raw().u64("queries-per-day", 200, "stream queries per day");
  auto ingest_threads = cli.raw().u64("ingest-threads", 4, "writer threads per batch");
  auto out_path =
      cli.raw().str("out", "results/BENCH_ingest.json", "report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "ingest: live tiered index vs stop-the-world rebuild",
      "a daily crawl keeps appending (Table 1: ~1.5M downloads/day at Anzhi "
      "scale); analytics must keep answering day-N queries while day N+1 lands");

  const Workload workload =
      make_workload(cli.seed(), static_cast<std::uint32_t>(*users), *days, *rows,
                    *queries);

  const RegimeResult batch = run_batch(workload);
  const RegimeResult live =
      run_live(workload, static_cast<std::size_t>(*ingest_threads));

  // Determinism gate: both regimes answered every query over the identical
  // day prefix, so every per-day checksum must match exactly.
  std::uint64_t mismatches = 0;
  for (std::uint64_t day = 0; day < workload.days; ++day) {
    if (batch.day_checksums[day] != live.day_checksums[day]) ++mismatches;
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %llu/%llu day checksums diverge between regimes\n",
                 static_cast<unsigned long long>(mismatches),
                 static_cast<unsigned long long>(workload.days));
    return 1;
  }

  const std::uint64_t total_rows = workload.days * workload.rows_per_day;
  const std::uint64_t total_queries = workload.days * workload.queries_per_day;
  const double speedup = live.seconds > 0.0 ? batch.seconds / live.seconds : 0.0;

  report::Table table({"regime", "seconds", "ingest rows/s", "queries", "queries/s"});
  const auto row = [&](const char* name, const RegimeResult& result) {
    table.row({name, util::format("{:.3f}", result.seconds),
               util::format("{:.0f}", static_cast<double>(total_rows) / result.seconds),
               util::format("{}", total_queries),
               util::format("{:.0f}",
                            static_cast<double>(total_queries) / result.seconds)});
  };
  row("batch rebuild", batch);
  row("live frontier", live);
  benchx::print_table(table);
  std::printf("checksums: %llu/%llu days identical across regimes\n",
              static_cast<unsigned long long>(workload.days),
              static_cast<unsigned long long>(workload.days));
  std::printf("ingest-while-serving speedup: %.2fx (floor 5.0x)\n", speedup);

  const crawlersim::Json document = crawlersim::json_object(
      {{"bench", "ingest"},
       {"seed", cli.seed()},
       {"users", *users},
       {"days", *days},
       {"rows_per_day", *rows},
       {"queries_per_day", *queries},
       {"ingest_threads", *ingest_threads},
       {"total_rows", total_rows},
       {"batch_seconds", batch.seconds},
       {"live_seconds", live.seconds},
       {"batch_queries_per_second",
        static_cast<double>(total_queries) / batch.seconds},
       {"live_queries_per_second",
        static_cast<double>(total_queries) / live.seconds},
       {"checksums_match", true},
       {"speedup", speedup}});
  if (load::write_json_file(document, *out_path)) {
    std::printf("wrote %s\n", out_path->c_str());
  }

  cli.metrics().gauge("ingest_speedup").add(speedup);
  cli.dump_metrics();
  return speedup >= 5.0 ? 0 : 1;
}
