// Fig. 3: downloads vs app rank (log-log) per appstore. The main trunk is a
// Zipf line with reported slopes Anzhi 1.42, AppChina 1.51, 1Mobile 0.92,
// SlideMe 0.90, truncated at the head (fetch-at-most-once) and at the tail
// (clustering effect).
#include "common.hpp"

#include "core/study.hpp"
#include "stats/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig3_powerlaw",
                       "Fig. 3: truncated power-law popularity distribution");
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading(
      "Fig. 3 — App popularity deviates from Zipf at both ends",
      "trunk slopes: Anzhi 1.42, AppChina 1.51, 1Mobile 0.92, SlideMe 0.90; head "
      "flattens (fetch-at-most-once), tail collapses (clustering effect)");

  report::Table table({"store", "trunk exponent", "trunk R^2", "head ratio", "tail ratio"});
  std::vector<report::Series> all_series;

  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    const auto report = study.popularity_fit();
    table.row({profile.name, report::fixed(report.trunk.exponent, 2),
               report::fixed(report.trunk.r_squared, 3),
               report::fixed(report.head_ratio, 3), report::fixed(report.tail_ratio, 3)});

    // Export the full rank-download curve (decimated log-uniformly).
    report::Series series;
    series.name = "rank_downloads_" + profile.name;
    series.columns = {"rank", "downloads"};
    const auto ranks = study.store().downloads_by_rank();
    std::size_t step = 1;
    for (std::size_t i = 0; i < ranks.size(); i += step) {
      series.add({static_cast<double>(i + 1), ranks[i]});
      if (i + 1 >= 100) step = std::max<std::size_t>(1, (i + 1) / 100);
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  std::printf("head/tail ratio: measured / trunk-fit prediction at that rank; "
              "values well below 1 indicate truncation.\n");
  report::export_all(all_series, "fig3");
  return 0;
}
