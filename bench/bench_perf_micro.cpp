// Performance microbenchmarks (google-benchmark): the hot paths that bound
// simulation throughput — Zipf/alias sampling, model session steps, cache
// operations, affinity computation, JSON handling and HTTP round-trips.
#include <benchmark/benchmark.h>

#include "affinity/metric.hpp"
#include "cache/policy.hpp"
#include "crawler/json.hpp"
#include "models/app_clustering_model.hpp"
#include "models/zipf_amo_model.hpp"
#include "models/zipf_model.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "stats/zipf.hpp"

namespace {

using namespace appstore;

void BM_ZipfSamplerDraw(benchmark::State& state) {
  const stats::ZipfSampler sampler(static_cast<std::uint64_t>(state.range(0)), 1.4);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfSamplerDraw)->Arg(1000)->Arg(100000);

void BM_ZipfSamplerBuild(benchmark::State& state) {
  for (auto _ : state) {
    const stats::ZipfSampler sampler(static_cast<std::uint64_t>(state.range(0)), 1.4);
    benchmark::DoNotOptimize(sampler.size());
  }
}
BENCHMARK(BM_ZipfSamplerBuild)->Arg(1000)->Arg(100000);

void BM_ModelSessionStep(benchmark::State& state) {
  models::ModelParams params;
  params.app_count = 60000;
  params.user_count = 1000;
  params.downloads_per_user = 10;
  params.zr = 1.7;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;
  const auto kind = static_cast<models::ModelKind>(state.range(0));
  const auto model = models::make_model(kind, params);
  util::Rng rng(2);
  auto session = model->new_session();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (steps++ % 32 == 0 || session->exhausted()) session = model->new_session();
    benchmark::DoNotOptimize(session->next(rng));
  }
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_ModelSessionStep)->Arg(0)->Arg(1)->Arg(2);

void BM_LruAccess(benchmark::State& state) {
  cache::LruCache cache(static_cast<std::size_t>(state.range(0)));
  const stats::ZipfSampler sampler(60000, 1.7);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::uint32_t>(sampler.sample_index(rng))));
  }
}
BENCHMARK(BM_LruAccess)->Arg(600)->Arg(6000);

void BM_ClusterLruAccess(benchmark::State& state) {
  std::vector<std::uint32_t> app_category(60000);
  for (std::uint32_t a = 0; a < app_category.size(); ++a) app_category[a] = a % 30;
  cache::ClusterLruCache cache(static_cast<std::size_t>(state.range(0)), app_category);
  const stats::ZipfSampler sampler(60000, 1.7);
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::uint32_t>(sampler.sample_index(rng))));
  }
}
BENCHMARK(BM_ClusterLruAccess)->Arg(600)->Arg(6000);

void BM_AffinityDepth(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::uint32_t> categories(200);
  for (auto& c : categories) c = static_cast<std::uint32_t>(rng.below(34));
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(affinity::affinity(categories, depth));
  }
}
BENCHMARK(BM_AffinityDepth)->Arg(1)->Arg(3);

void BM_JsonRoundTrip(benchmark::State& state) {
  crawlersim::JsonArray ids;
  for (int i = 0; i < 100; ++i) ids.push_back(crawlersim::Json(i));
  const crawlersim::Json document = crawlersim::json_object(
      {{"page", crawlersim::Json(0)},
       {"total", crawlersim::Json(100)},
       {"ids", crawlersim::Json(std::move(ids))}});
  const std::string text = document.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crawlersim::parse_json(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_HttpRoundTrip(benchmark::State& state) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "pong");
  });
  net::HttpClient client("127.0.0.1", server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/ping"));
  }
}
BENCHMARK(BM_HttpRoundTrip);

// Same round-trip with the metrics registry attached: the delta against
// BM_HttpRoundTrip is the full per-request instrumentation cost (acceptance
// bound: <= 5% of the uninstrumented round-trip).
void BM_HttpRoundTripInstrumented(benchmark::State& state) {
  obs::Registry registry;
  net::HttpServer server(net::ServerOptions{.metrics = &registry},
                         [](const net::HttpRequest&) {
                           return net::HttpResponse::text(200, "pong");
                         });
  net::HttpClient client("127.0.0.1", server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/ping"));
  }
}
BENCHMARK(BM_HttpRoundTripInstrumented);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram histogram;
  double value = 1e-6;
  for (auto _ : state) {
    histogram.observe(value);
    value = value < 1.0 ? value * 1.0001 : 1e-6;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

BENCHMARK_MAIN();
