// Performance microbenchmarks (google-benchmark): the hot paths that bound
// simulation throughput — Zipf/alias sampling, model session steps, cache
// operations, affinity computation, JSON handling, HTTP round-trips, and the
// src/par scaling sweeps (stream generation, fit sweep, bootstrap at 1/2/4/8
// threads). `--metrics-out=FILE` writes per-benchmark wall times and derived
// par_speedup gauges as a metrics JSON (results/BENCH_parallel.json is the
// checked-in baseline).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "affinity/metric.hpp"
#include "cache/policy.hpp"
#include "chaos/fault.hpp"
#include "crawler/json.hpp"
#include "events/event_log.hpp"
#include "fit/sweep.hpp"
#include "market/store.hpp"
#include "synth/generator.hpp"
#include "models/app_clustering_model.hpp"
#include "models/stream.hpp"
#include "models/zipf_amo_model.hpp"
#include "models/zipf_model.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "stats/bootstrap.hpp"
#include "stats/zipf.hpp"

namespace {

using namespace appstore;

void BM_ZipfSamplerDraw(benchmark::State& state) {
  const stats::ZipfSampler sampler(static_cast<std::uint64_t>(state.range(0)), 1.4);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfSamplerDraw)->Arg(1000)->Arg(100000);

void BM_ZipfSamplerBuild(benchmark::State& state) {
  for (auto _ : state) {
    const stats::ZipfSampler sampler(static_cast<std::uint64_t>(state.range(0)), 1.4);
    benchmark::DoNotOptimize(sampler.size());
  }
}
BENCHMARK(BM_ZipfSamplerBuild)->Arg(1000)->Arg(100000);

void BM_ModelSessionStep(benchmark::State& state) {
  models::ModelParams params;
  params.app_count = 60000;
  params.user_count = 1000;
  params.downloads_per_user = 10;
  params.zr = 1.7;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;
  const auto kind = static_cast<models::ModelKind>(state.range(0));
  const auto model = models::make_model(kind, params);
  util::Rng rng(2);
  auto session = model->new_session();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (steps++ % 32 == 0 || session->exhausted()) session = model->new_session();
    benchmark::DoNotOptimize(session->next(rng));
  }
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_ModelSessionStep)->Arg(0)->Arg(1)->Arg(2);

void BM_LruAccess(benchmark::State& state) {
  cache::LruCache cache(static_cast<std::size_t>(state.range(0)));
  const stats::ZipfSampler sampler(60000, 1.7);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::uint32_t>(sampler.sample_index(rng))));
  }
}
BENCHMARK(BM_LruAccess)->Arg(600)->Arg(6000);

void BM_ClusterLruAccess(benchmark::State& state) {
  std::vector<std::uint32_t> app_category(60000);
  for (std::uint32_t a = 0; a < app_category.size(); ++a) app_category[a] = a % 30;
  cache::ClusterLruCache cache(static_cast<std::size_t>(state.range(0)), app_category);
  const stats::ZipfSampler sampler(60000, 1.7);
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::uint32_t>(sampler.sample_index(rng))));
  }
}
BENCHMARK(BM_ClusterLruAccess)->Arg(600)->Arg(6000);

void BM_AffinityDepth(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::uint32_t> categories(200);
  for (auto& c : categories) c = static_cast<std::uint32_t>(rng.below(34));
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(affinity::affinity(categories, depth));
  }
}
BENCHMARK(BM_AffinityDepth)->Arg(1)->Arg(3);

void BM_JsonRoundTrip(benchmark::State& state) {
  crawlersim::JsonArray ids;
  for (int i = 0; i < 100; ++i) ids.push_back(crawlersim::Json(i));
  const crawlersim::Json document = crawlersim::json_object(
      {{"page", crawlersim::Json(0)},
       {"total", crawlersim::Json(100)},
       {"ids", crawlersim::Json(std::move(ids))}});
  const std::string text = document.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crawlersim::parse_json(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_HttpRoundTrip(benchmark::State& state) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "pong");
  });
  net::HttpClient client("127.0.0.1", server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/ping"));
  }
}
BENCHMARK(BM_HttpRoundTrip);

// Same round-trip with the metrics registry attached: the delta against
// BM_HttpRoundTrip is the full per-request instrumentation cost (acceptance
// bound: <= 5% of the uninstrumented round-trip).
void BM_HttpRoundTripInstrumented(benchmark::State& state) {
  obs::Registry registry;
  net::ServerOptions options;
  options.metrics = &registry;
  net::HttpServer server(std::move(options), [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "pong");
  });
  net::HttpClient client("127.0.0.1", server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/ping"));
  }
}
BENCHMARK(BM_HttpRoundTripInstrumented);

// Same round-trip with a chaos::FaultInjector wired into the client but a
// plan whose only rule has probability zero: every request consults the
// seam, none is perturbed. The delta against BM_HttpRoundTrip is the cost of
// carrying the fault seam in production builds (expected ~0: one mutex-
// guarded map lookup + a pure hash per request).
void BM_HttpRoundTripFaultSeam(benchmark::State& state) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "pong");
  });
  chaos::FaultPlan plan;
  plan.rules.push_back(
      {chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset, 0.0, {}});
  chaos::FaultInjector injector(plan);
  net::HttpClient client("127.0.0.1", server.port(),
                         net::ClientOptions{.faults = &injector});
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get("/ping"));
  }
}
BENCHMARK(BM_HttpRoundTripFaultSeam);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram histogram;
  double value = 1e-6;
  for (auto _ : state) {
    histogram.observe(value);
    value = value < 1.0 ? value * 1.0001 : 1e-6;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

// ---- columnar event-log access ---------------------------------------------
// AoS materialization vs zero-copy CSR views over the same comment log. The
// acceptance bound for the events spine is CSR throughput >= 2x materialize.

/// Seeded Anzhi-profile store with comments, built once and shared by the
/// event-access benches (generation dominates otherwise).
const market::AppStore& event_bench_store() {
  static const auto generated = [] {
    synth::GeneratorConfig config;
    config.app_scale = 0.02;
    config.download_scale = 2e-5;
    config.comments = true;
    synth::StoreProfile profile = synth::anzhi();
    profile.commenter_fraction = 0.3;
    return synth::generate(profile, config);
  }();
  return *generated.store;
}

void BM_CommentStreamsMaterialize(benchmark::State& state) {
  const market::AppStore& store = event_bench_store();
  const events::FrontierSnapshot log = store.comment_log();
  const std::uint64_t events = log.size();
  for (auto _ : state) {
    // Full AoS copy of the log into per-user vectors, then one read pass —
    // the batch-era baseline the zero-copy views replaced.
    std::vector<std::vector<events::Event>> streams(log.user_count());
    for (std::uint64_t i = 0; i < events; ++i) {
      const events::Event event = log.row(i);
      streams[event.user].push_back(event);
    }
    std::uint64_t rating_sum = 0;
    for (const auto& stream : streams) {
      for (const auto& event : stream) rating_sum += event.rating;
    }
    benchmark::DoNotOptimize(rating_sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * events));
}
BENCHMARK(BM_CommentStreamsMaterialize);

void BM_CommentStreamsCsrView(benchmark::State& state) {
  const market::AppStore& store = event_bench_store();
  const events::FrontierSnapshot log = store.comment_log();
  const std::uint64_t events = log.size();
  for (auto _ : state) {
    // Same read pass through the tiered-index views: no bulk copy.
    std::uint64_t rating_sum = 0;
    for (std::uint32_t u = 0; u < log.user_count(); ++u) {
      for (const auto event : log.stream(u)) rating_sum += event.rating;
    }
    benchmark::DoNotOptimize(rating_sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * events));
  state.counters["bytes_per_event"] =
      events == 0 ? 0.0
                  : static_cast<double>(store.comment_live().bytes()) /
                        static_cast<double>(events);
}
BENCHMARK(BM_CommentStreamsCsrView);

// ---- src/par scaling sweeps ------------------------------------------------
// Each bench takes the worker-thread count as its argument. Outputs are
// thread-count-invariant (see docs/performance.md), so the arg only changes
// wall time; main() below turns the measured times into par_speedup gauges.

/// Fig.-19 §7 workload: 60k apps, 30 categories, 600k users, 2M downloads.
models::ModelParams fig19_params() {
  models::ModelParams params;
  params.app_count = 60'000;
  params.user_count = 600'000;
  params.downloads_per_user = 2'000'000.0 / 600'000.0;
  params.zr = 1.7;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;
  return params;
}

void BM_StreamGenerateParallel(benchmark::State& state) {
  const auto model =
      models::make_model(models::ModelKind::kAppClustering, fig19_params());
  models::StreamOptions options;
  options.max_requests = 2'000'000;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(6);
    benchmark::DoNotOptimize(models::generate_stream(*model, rng, options));
  }
}
BENCHMARK(BM_StreamGenerateParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_FitSweepParallel(benchmark::State& state) {
  // Fig.-8-sized (zr, p, zc) grid against a once-simulated measured curve.
  models::ModelParams params;
  params.app_count = 2'000;
  params.user_count = 5'000;
  params.downloads_per_user = 10.0;
  params.zr = 1.6;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;
  const auto truth = models::make_model(models::ModelKind::kAppClustering, params);
  util::Rng rng(7);
  const auto measured = truth->generate(rng, false).by_rank();

  fit::SweepOptions options;
  options.zr_grid = {1.2, 1.4, 1.6, 1.8};
  options.p_grid = {0.85, 0.9, 0.95};
  options.zc_grid = {1.2, 1.4, 1.6};
  options.seed = 8;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_model(models::ModelKind::kAppClustering, measured,
                                            params.user_count, params.cluster_count,
                                            options));
  }
}
BENCHMARK(BM_FitSweepParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BootstrapParallel(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<double> sample(20'000);
  for (auto& v : sample) v = rng.lognormal(0.0, 1.5);
  stats::BootstrapOptions options;
  options.resamples = 2'000;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng run_rng(10);
    benchmark::DoNotOptimize(stats::bootstrap_mean_ci(sample, run_rng, options));
  }
}
BENCHMARK(BM_BootstrapParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Console reporter that also records every run's real time into a metrics
/// registry (gauge bench_real_seconds{<name>/<arg>}), so --metrics-out ships
/// the raw scaling curve alongside the derived speedups.
class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  explicit MetricsReporter(obs::Registry* registry) : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.error_occurred) continue;
      const double iterations =
          std::max<double>(1.0, static_cast<double>(run.iterations));
      // Drop the "/iterations:N" suffix so labels are "BM_Name/arg".
      std::string name = run.benchmark_name();
      if (const auto pos = name.find("/iterations:"); pos != std::string::npos) {
        name.resize(pos);
      }
      registry_->gauge("bench_real_seconds", name)
          .set(run.real_accumulated_time / iterations);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  obs::Registry* registry_;
};

/// Folds bench_real_seconds{BM_Xxx/N} gauges into par_speedup{BM_Xxx/N}
/// = t(threads=1) / t(threads=N) for the */1-argumented scaling benches.
void record_speedups(obs::Registry& registry) {
  const auto snapshot = registry.snapshot();
  for (const auto& base : snapshot.gauges) {
    if (base.name != "bench_real_seconds") continue;
    const std::string_view label = base.label;
    if (!label.ends_with("/1")) continue;
    const auto family = label.substr(0, label.size() - 2);
    for (const auto& other : snapshot.gauges) {
      if (other.name != "bench_real_seconds" || other.value <= 0.0) continue;
      const std::string_view other_label = other.label;
      const auto slash = other_label.rfind('/');
      if (slash == std::string_view::npos || other_label.substr(0, slash) != family) {
        continue;
      }
      registry.gauge("par_speedup", other.label).set(base.value / other.value);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --metrics-out=FILE (ours) before google-benchmark parses flags.
  std::string metrics_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--metrics-out=")) {
      metrics_out = std::string(arg.substr(std::string_view("--metrics-out=").size()));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());

  obs::Registry registry;
  MetricsReporter reporter(&registry);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  record_speedups(registry);
  if (!metrics_out.empty()) obs::write_json_file(registry, metrics_out);
  return 0;
}
