// Fig. 4: CDF of the number of updates per app within two months.
// Paper: >80% of apps receive no updates; 99% fewer than four. Among the
// top-10% most popular apps, 60-75% receive no updates and 99% up to six.
#include "common.hpp"

#include "core/study.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig4_updates", "Fig. 4: apps are not updated often");
  cli.parse(argc, argv);
  const auto config = cli.config();

  benchx::print_heading("Fig. 4 — Apps are not updated often",
                        ">80% of apps have zero updates in two months; 99% fewer than "
                        "four; the top-10% apps update somewhat more (60-75% zero)");

  report::Table table({"store", "P[0 updates]", "P[<=1]", "P[<=3]", "P[<=3] top-10%",
                       "P[0] top-10%"});
  std::vector<report::Series> all_series;

  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    const stats::Ecdf all(study.updates_per_app(false));
    const stats::Ecdf top(study.updates_per_app(true));
    table.row({profile.name, report::percent(all.at(0.0)), report::percent(all.at(1.0)),
               report::percent(all.at(3.0)), report::percent(top.at(3.0)),
               report::percent(top.at(0.0))});

    report::Series series;
    series.name = "updates_cdf_" + profile.name;
    series.columns = {"updates", "cdf_all", "cdf_top10"};
    for (int updates = 0; updates <= 25; ++updates) {
      series.add({static_cast<double>(updates), all.at(updates), top.at(updates)});
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(table);
  report::export_all(all_series, "fig4");
  return 0;
}
