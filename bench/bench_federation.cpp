// Federation fan-out bench (ISSUE 10 acceptance bench).
//
// The same offered load is driven through two in-process gateways over the
// same anzhi config: one fronting a single shard (the no-fan-out baseline)
// and one fronting N user-sharded stores, where cross-shard routes scatter
// to every shard and merge. Per-endpoint client-observed p99s are compared.
//
// The floor (exit code 1 on violation): for every endpoint class the
// federated gateway's p99 must stay within --gate-ratio (default 3x) of the
// single-shard p99 at the same offered load, with a 200 us epsilon so
// microsecond-scale in-process baselines cannot fail the gate on scheduler
// noise alone. Results land in results/BENCH_federation.json
// (docs/federation.md documents the shape).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "crawler/service.hpp"
#include "fed/federation.hpp"
#include "fed/gateway.hpp"
#include "load/harness.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"
#include "market/types.hpp"
#include "report/table.hpp"

namespace {

using namespace appstore;
using crawlersim::Json;
using crawlersim::JsonArray;
using crawlersim::json_object;

constexpr double kUnlimited = 1e12;  // the bench measures the gateway, not
                                     // the shard token buckets
constexpr market::Day kEndOfHistory = 1 << 20;
/// Epsilon under the ratio gate: 3x of a noise-floor baseline p99 is not a
/// meaningful budget, so the allowed p99 never drops below ratio * 200 us.
constexpr double kEpsilonP99 = 200e-6;

struct GatewayRun {
  std::size_t shards = 0;
  load::RunReport report;
  fed::GatewayStats stats;
};

[[nodiscard]] GatewayRun run_gateway(const synth::StoreProfile& profile,
                                     const synth::GeneratorConfig& config,
                                     std::size_t shards, std::uint64_t seed,
                                     std::uint32_t clients, std::uint32_t requests,
                                     std::size_t apps) {
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = kUnlimited;
  policy.burst = kUnlimited;

  fed::FederationOptions federation_options;
  federation_options.profile = profile;
  federation_options.config = config;
  federation_options.shards = shards;
  federation_options.policy = policy;
  federation_options.day = kEndOfHistory;
  const fed::Federation federation = fed::build_federation(federation_options);

  fed::GatewayOptions gateway_options;
  // Sequential scatter: per-request fan-out workers only pay off when an
  // upstream exchange costs milliseconds (sockets); against in-process
  // shards the spawn cost alone would dwarf the calls being parallelized.
  gateway_options.fanout_threads = 0;
  fed::FederationGateway gateway(gateway_options);
  federation.attach(gateway);

  load::ScheduleOptions schedule_options;
  schedule_options.seed = seed;
  schedule_options.clients = clients;
  schedule_options.requests_per_client = requests;
  schedule_options.mix.query_weight = 0.10;
  schedule_options.mix.app_count =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(apps));
  const load::Schedule schedule = load::build_schedule(schedule_options);

  load::RunOptions run_options;
  run_options.respond = [&gateway](const net::HttpRequest& request) {
    return gateway.respond(request);
  };

  GatewayRun run;
  run.shards = shards;
  run.report = load::run(schedule, run_options);
  run.stats = gateway.stats();
  return run;
}

[[nodiscard]] Json stats_json(const fed::GatewayStats& stats) {
  return json_object({{"requests", stats.requests},
                      {"ok", stats.ok},
                      {"http_4xx", stats.http_4xx},
                      {"http_5xx", stats.http_5xx},
                      {"transport", stats.transport},
                      {"breaker_open", stats.breaker_open},
                      {"shed", stats.shed},
                      {"upstream_calls", stats.upstream_calls},
                      {"hedges", stats.hedges},
                      {"hedge_wins", stats.hedge_wins},
                      {"hedges_cancelled", stats.hedges_cancelled}});
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchCli cli("bench_federation",
                       "scatter-gather gateway fan-out cost vs a single-shard "
                       "gateway at the same offered load",
                       0.01, 5e-5);
  auto shards = cli.raw().u64("shards", 4, "federated shard count");
  auto clients = cli.raw().u64("clients", 4, "closed-loop client threads");
  auto requests = cli.raw().u64("requests", 400, "requests per client");
  auto gate_ratio = cli.raw().f64(
      "gate-ratio", 3.0, "maximum federated/single p99 ratio per endpoint");
  auto out_path =
      cli.raw().str("out", "results/BENCH_federation.json", "report destination");
  cli.parse(argc, argv);

  benchx::print_heading(
      "federation: fan-out serving cost",
      "one store's union log split across user-sharded stores must answer the "
      "paper's aggregates through scatter-gather without giving up tail latency");

  const synth::GeneratorConfig config = cli.config();
  // One throwaway generation to size the schedule's app-id universe; the
  // per-shard stores regenerate the identical replicated entity state.
  const std::size_t apps = synth::generate(synth::anzhi(), config).store->apps().size();

  const GatewayRun single =
      run_gateway(synth::anzhi(), config, 1, cli.seed(),
                  static_cast<std::uint32_t>(*clients),
                  static_cast<std::uint32_t>(*requests), apps);
  const GatewayRun federated =
      run_gateway(synth::anzhi(), config, static_cast<std::size_t>(*shards),
                  cli.seed(), static_cast<std::uint32_t>(*clients),
                  static_cast<std::uint32_t>(*requests), apps);

  bool gate_pass = true;
  JsonArray gate_checks;
  report::Table table({"endpoint", "count", "single p99 us", "fed p99 us", "ratio",
                       "budget us", "gate"});
  for (std::size_t op = 0; op < single.report.latency.size() &&
                           op < federated.report.latency.size();
       ++op) {
    const load::EndpointLatency& base = single.report.latency[op];
    const load::EndpointLatency& fed = federated.report.latency[op];
    if (base.count == 0 || fed.count == 0) continue;
    const double budget = *gate_ratio * std::max(base.p99, kEpsilonP99);
    const bool ok = fed.p99 <= budget;
    gate_pass = gate_pass && ok;
    const double ratio = base.p99 > 0.0 ? fed.p99 / base.p99 : 0.0;
    gate_checks.push_back(json_object({{"endpoint", base.endpoint},
                                       {"single_p99_seconds", base.p99},
                                       {"federated_p99_seconds", fed.p99},
                                       {"budget_seconds", budget},
                                       {"ok", ok}}));
    table.row({base.endpoint, std::to_string(fed.count),
               util::format("{:.0f}", base.p99 * 1e6),
               util::format("{:.0f}", fed.p99 * 1e6),
               util::format("{:.2f}", ratio), util::format("{:.0f}", budget * 1e6),
               ok ? "ok" : "FAIL"});
  }
  benchx::print_table(table);
  std::printf("single-shard: %.0f rps, federated (%llu shards): %.0f rps, "
              "upstream calls %llu, hedges %llu\n",
              single.report.throughput_rps,
              static_cast<unsigned long long>(*shards),
              federated.report.throughput_rps,
              static_cast<unsigned long long>(federated.stats.upstream_calls),
              static_cast<unsigned long long>(federated.stats.hedges));

  const Json document = json_object(
      {{"profile", std::string("anzhi")},
       {"shards", static_cast<std::uint64_t>(*shards)},
       {"gate_ratio", *gate_ratio},
       {"epsilon_p99_seconds", kEpsilonP99},
       {"single",
        json_object({{"report", load::to_json(single.report)},
                     {"gateway", stats_json(single.stats)}})},
       {"federated",
        json_object({{"report", load::to_json(federated.report)},
                     {"gateway", stats_json(federated.stats)}})},
       {"gate", json_object({{"pass", gate_pass},
                             {"checks", Json(std::move(gate_checks))}})}});
  load::write_json_file(document, *out_path);
  cli.metrics().gauge("federation_gate_pass").set(gate_pass ? 1.0 : 0.0);
  cli.dump_metrics();
  if (!gate_pass) {
    std::fprintf(stderr, "bench_federation: fan-out p99 floor FAILED (see %s)\n",
                 out_path->c_str());
    return 1;
  }
  return 0;
}
