// Fig. 6: temporal affinity of users to app categories, by comment-count
// group, for depths 1-3, against the random-walk baseline.
// Paper: depth-1 affinity ~0.55 vs random walk 0.14 (3.9x); baselines for
// depths 2 and 3 are 0.28 and 0.42; affinity grows with depth.
#include "common.hpp"

#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig6_affinity_depth",
                       "Fig. 6: temporal affinity by user group and depth");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.comments = true;

  benchx::print_heading("Fig. 6 — Successive selections stay in the same category",
                        "avg depth-1 affinity ~0.55 vs 0.14 random walk (3.9x); "
                        "random baselines 0.28 (d2), 0.42 (d3); affinity rises with depth");

  synth::StoreProfile profile = synth::anzhi();
  profile.commenter_fraction = 0.10;
  const core::EcosystemStudy study(profile, config);
  const auto strings = study.category_strings();
  std::printf("commenting users: %zu\n\n", strings.size());

  std::vector<report::Series> all_series;
  report::Table summary({"depth", "mean affinity", "random walk", "ratio", "groups"});

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    const auto groups = affinity::affinity_by_group(strings, depth, 10);
    const double random_walk = study.random_walk_affinity(depth);

    double weighted_mean = 0.0;
    std::size_t total_samples = 0;
    for (const auto& group : groups) {
      weighted_mean += group.mean * static_cast<double>(group.samples);
      total_samples += group.samples;
    }
    if (total_samples > 0) weighted_mean /= static_cast<double>(total_samples);

    summary.row({std::to_string(depth), report::fixed(weighted_mean, 3),
                 report::fixed(random_walk, 3),
                 report::fixed(random_walk > 0 ? weighted_mean / random_walk : 0.0, 1) + "x",
                 std::to_string(groups.size())});

    report::Series series;
    series.name = util::format("affinity_groups_depth{}", depth);
    series.columns = {"comments", "samples", "mean", "ci_low", "ci_high", "random_walk"};
    for (const auto& group : groups) {
      series.add({static_cast<double>(group.comments), static_cast<double>(group.samples),
                  group.mean, group.ci_low, group.ci_high, random_walk});
    }
    all_series.push_back(std::move(series));
  }
  benchx::print_table(summary);
  report::export_all(all_series, "fig6");
  return 0;
}
