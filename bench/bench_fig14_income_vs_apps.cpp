// Fig. 14: number of paid apps per developer vs total income.
// Paper: Pearson correlation 0.008 — no relation between portfolio size and
// income: quality matters more than quantity.
#include "common.hpp"

#include <map>

#include "pricing/income.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig14_income_vs_apps",
                       "Fig. 14: quality beats quantity for developer income");
  cli.parse(argc, argv);
  auto config = cli.config();
  config.app_scale = std::max(config.app_scale, 0.10);
  config.download_scale = std::max(config.download_scale, 5e-4);
  config.paid_download_scale = 0.05;  // resolve the small paid segment

  benchx::print_heading("Fig. 14 — Quality is more important than quantity",
                        "Pearson(income, #paid apps per developer) = 0.008");

  const auto generated = synth::generate(synth::slideme(), config);
  const auto incomes = pricing::developer_incomes(*generated.store);
  const double correlation = pricing::income_app_count_correlation(incomes);

  // Average income by portfolio size.
  std::map<std::uint32_t, std::pair<double, std::size_t>> by_size;
  for (const auto& entry : incomes) {
    auto& [sum, count] = by_size[entry.paid_apps];
    sum += entry.income_dollars;
    ++count;
  }

  report::Table table({"paid apps", "developers", "avg income"});
  report::Series series{"income_by_apps", {"paid_apps", "developers", "avg_income"}, {}};
  for (const auto& [apps, sum_count] : by_size) {
    const double average = sum_count.first / static_cast<double>(sum_count.second);
    table.row({std::to_string(apps), std::to_string(sum_count.second),
               "$" + report::fixed(average, 2)});
    series.add({static_cast<double>(apps), static_cast<double>(sum_count.second), average});
  }
  benchx::print_table(table);
  std::printf("Pearson(income, #paid apps) = %.3f  (paper: 0.008)\n", correlation);
  report::export_all({series}, "fig14");
  return 0;
}
