// Fig. 5: users focus on a few categories (Anzhi comment dataset).
//   (a) comments per user: 92% of users <= 10 comments, 99% <= 30;
//   (b) unique categories per user: 53% one category, 94% <= 5;
//   (c) average share of comments in the user's top-k categories:
//       66% in the top category, 95% within the top 3-5;
//   (d) downloads per category: the most popular category holds only ~12%.
#include "common.hpp"

#include "core/study.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig5_user_categories", "Fig. 5: users focus on few categories");
  cli.raw();  // flags registered by BenchCli
  cli.parse(argc, argv);
  auto config = cli.config();
  config.comments = true;

  benchx::print_heading("Fig. 5 — Users focus on a few categories",
                        "(a) 92% of users <=10 comments; (b) 53% comment in a single "
                        "category, 94% in <=5; (c) 66% of an average user's comments "
                        "fall in one category; (d) top category has just 12% of downloads");

  // Anzhi provides the comment dataset; raise the commenter share so the
  // scaled-down run still has thousands of commenting users.
  synth::StoreProfile profile = synth::anzhi();
  profile.commenter_fraction = 0.10;
  const core::EcosystemStudy study(profile, config);
  const auto strings = study.category_strings();
  std::printf("commenting users: %zu\n\n", strings.size());

  // (a) comments per user.
  std::vector<double> comments_per_user;
  for (const auto& s : strings) comments_per_user.push_back(static_cast<double>(s.size()));
  const stats::Ecdf comment_cdf(comments_per_user);
  report::Table table_a({"comments", "CDF"});
  for (const int k : {1, 2, 5, 10, 20, 30, 100}) {
    table_a.row({std::to_string(k), report::percent(comment_cdf.at(k))});
  }
  std::printf("(a) comments per user\n");
  benchx::print_table(table_a);

  // (b) unique categories per user.
  const auto unique_counts = affinity::unique_categories_per_user(strings);
  const stats::Ecdf unique_cdf(unique_counts);
  report::Table table_b({"categories", "CDF"});
  for (const int k : {1, 2, 3, 5, 10, 15}) {
    table_b.row({std::to_string(k), report::percent(unique_cdf.at(k))});
  }
  std::printf("(b) unique categories per user\n");
  benchx::print_table(table_b);

  // (c) average share of comments in top-k categories.
  const auto shares = affinity::topk_comment_share(strings, 10);
  report::Table table_c({"top-k", "avg comment share"});
  for (std::size_t k = 0; k < shares.size(); ++k) {
    table_c.row({std::to_string(k + 1), report::fixed(shares[k], 1) + "%"});
  }
  std::printf("(c) comments in top-k categories\n");
  benchx::print_table(table_c);

  // (d) downloads per category.
  const auto& store = study.store();
  std::vector<double> per_category(store.categories().size(), 0.0);
  for (const auto& app : store.apps()) {
    per_category[app.category.index()] +=
        static_cast<double>(store.downloads_of(app.id));
  }
  const double total = static_cast<double>(store.total_downloads());
  std::vector<double> percents;
  for (const double d : per_category) percents.push_back(100.0 * d / total);
  std::sort(percents.begin(), percents.end(), std::greater<>());
  report::Table table_d({"category rank", "download share"});
  for (const std::size_t rank : {0u, 1u, 2u, 4u, 9u, 19u}) {
    if (rank < percents.size()) {
      table_d.row({std::to_string(rank + 1), report::fixed(percents[rank], 1) + "%"});
    }
  }
  std::printf("(d) downloads per category (sorted)\n");
  benchx::print_table(table_d);

  // CSV export.
  report::Series sa{"comments_per_user_cdf", {"comments", "cdf"}, {}};
  for (const auto& point : comment_cdf.steps()) sa.add({point.x, point.f});
  report::Series sb{"unique_categories_cdf", {"categories", "cdf"}, {}};
  for (const auto& point : unique_cdf.steps()) sb.add({point.x, point.f});
  report::Series sc{"topk_share", {"k", "share_percent"}, {}};
  for (std::size_t k = 0; k < shares.size(); ++k) {
    sc.add({static_cast<double>(k + 1), shares[k]});
  }
  report::Series sd{"category_download_share", {"category_rank", "percent"}, {}};
  for (std::size_t r = 0; r < percents.size(); ++r) {
    sd.add({static_cast<double>(r + 1), percents[r]});
  }
  report::export_all({sa, sb, sc, sd}, "fig5");
  return 0;
}
