// Ablation: category prefetching (§7 "Effective prefetching").
//
// Wraps an LRU cache with PrefetchingCache (after each access, admit the
// top-N most popular uncached apps of the accessed category) and measures
// the demand hit ratio under the three workload models, against plain LRU
// on the identical request stream. The clustering-driven workload should
// benefit the most — that is exactly the paper's prefetching argument.
#include "common.hpp"

#include "cache/prefetch.hpp"
#include "cache/sim.hpp"
#include "models/stream.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_ablation_prefetch",
                       "Ablation: category prefetching on top of LRU");
  auto scale = cli.raw().f64("cache-scale", 0.05, "fraction of the paper's 60k-app setup");
  auto per_hit = cli.raw().u64("prefetch", 3, "apps prefetched per access");
  cli.parse(argc, argv);

  benchx::print_heading("Ablation — category prefetching (§7)",
                        "prefetching popular same-category apps should recover part of "
                        "the LRU hit ratio the clustering effect destroys");

  // Fig.-19 setup.
  models::ModelParams params;
  params.app_count = static_cast<std::uint32_t>(std::max(100.0, 60'000.0 * *scale));
  params.user_count = static_cast<std::uint64_t>(std::max(100.0, 600'000.0 * *scale));
  params.downloads_per_user = 2'000'000.0 / 600'000.0;
  params.zr = 1.7;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;

  std::vector<std::uint32_t> app_category(params.app_count);
  for (std::uint32_t a = 0; a < params.app_count; ++a) app_category[a] = a % 30;

  report::Table table({"model", "cache %", "LRU", "LRU+prefetch", "prefetched apps"});
  report::Series series{"prefetch_hit_ratio",
                        {"model_index", "cache_percent", "lru", "lru_prefetch"},
                        {}};

  double model_index = 0.0;
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    const auto model = models::make_model(kind, params);
    util::Rng rng(cli.seed());
    models::StreamOptions stream_options;
    stream_options.metrics = &cli.metrics();
    stream_options.threads = cli.threads();
    const auto stream = models::generate_stream(*model, rng, stream_options);

    for (const int percent : {1, 5, 10}) {
      const std::size_t size = std::max<std::size_t>(
          1, static_cast<std::size_t>(params.app_count) *
                 static_cast<std::size_t>(percent) / 100);

      cache::LruCache plain(size);
      const auto plain_result = cache::simulate(plain, stream, size);

      cache::PrefetchingCache prefetching(std::make_unique<cache::LruCache>(size),
                                          app_category, *per_hit);
      const auto prefetch_result = cache::simulate(prefetching, stream, size);

      table.row({std::string(to_string(kind)), std::to_string(percent) + "%",
                 report::percent(plain_result.hit_ratio()),
                 report::percent(prefetch_result.hit_ratio()),
                 std::to_string(prefetching.prefetched())});
      series.add({model_index, static_cast<double>(percent), plain_result.hit_ratio(),
                  prefetch_result.hit_ratio()});
    }
    model_index += 1.0;
  }
  benchx::print_table(table);
  report::export_all({series}, "ablation_prefetch");
  cli.dump_metrics();
  return 0;
}
