// Fig. 19: LRU app-cache hit ratio vs cache size (1-20% of apps) under the
// three workload models (§7: 60k apps, 30 categories, 600k users, 2M
// downloads, zr=1.7, zc=1.4, p=0.9; cache warmed with the most popular apps).
// Paper: ZIPF > 99% everywhere; ZIPF-at-most-once 94.5% -> >99%;
// APP-CLUSTERING only 67.1% -> 96.3% — the clustering effect hurts LRU.
#include "common.hpp"

#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig19_cache", "Fig. 19: LRU hit ratio under 3 models");
  auto scale = cli.raw().f64("cache-scale", 0.05, "fraction of the paper's 60k-app setup");
  cli.parse(argc, argv);

  benchx::print_heading("Fig. 19 — Clustering hurts LRU cache performance",
                        "hit ratio at 1%..20% cache size: ZIPF >99%; at-most-once "
                        "94.5%->99%; APP-CLUSTERING 67.1%->96.3%");

  std::vector<core::CacheStudyResult> results;
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    results.push_back(core::cache_study(kind, *scale, cache::PolicyKind::kLru, cli.seed()));
  }

  report::Table table({"cache size %", "ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING"});
  report::Series series{"lru_hit_ratio",
                        {"cache_percent", "zipf", "zipf_amo", "app_clustering"},
                        {}};
  for (std::size_t i = 0; i < results[0].points.size(); ++i) {
    const double percent = static_cast<double>(i + 1);
    table.row({report::fixed(percent, 0) + "%",
               report::percent(results[0].points[i].hit_ratio),
               report::percent(results[1].points[i].hit_ratio),
               report::percent(results[2].points[i].hit_ratio)});
    series.add({percent, results[0].points[i].hit_ratio, results[1].points[i].hit_ratio,
                results[2].points[i].hit_ratio});
  }
  benchx::print_table(table);
  report::export_all({series}, "fig19");
  return 0;
}
