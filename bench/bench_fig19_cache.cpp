// Fig. 19: LRU app-cache hit ratio vs cache size (1-20% of apps) under the
// three workload models (§7: 60k apps, 30 categories, 600k users, 2M
// downloads, zr=1.7, zc=1.4, p=0.9; cache warmed with the most popular apps).
// Paper: ZIPF > 99% everywhere; ZIPF-at-most-once 94.5% -> >99%;
// APP-CLUSTERING only 67.1% -> 96.3% — the clustering effect hurts LRU.
#include "common.hpp"

#include <cctype>

#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace appstore;
  benchx::BenchCli cli("bench_fig19_cache", "Fig. 19: LRU hit ratio under 3 models");
  auto scale = cli.raw().f64("cache-scale", 0.05, "fraction of the paper's 60k-app setup");
  cli.parse(argc, argv);

  benchx::print_heading("Fig. 19 — Clustering hurts LRU cache performance",
                        "hit ratio at 1%..20% cache size: ZIPF >99%; at-most-once "
                        "94.5%->99%; APP-CLUSTERING 67.1%->96.3%");

  // Every §5 model is reachable through models::Model + to_string(kind), so
  // the table/series headers need no per-type switch.
  std::vector<core::CacheStudyResult> results;
  std::vector<std::string> headers{"cache size %"};
  std::vector<std::string> columns{"cache_percent"};
  for (const auto kind : models::all_model_kinds()) {
    core::CacheStudyOptions study_options;
    study_options.scale = *scale;
    study_options.policy = cache::PolicyKind::kLru;
    study_options.seed = cli.seed();
    study_options.metrics = &cli.metrics();
    study_options.threads = cli.threads();
    results.push_back(core::cache_study(kind, study_options));
    headers.emplace_back(models::to_string(kind));
    std::string column(models::to_string(kind));
    for (auto& c : column) c = (c == '-') ? '_' : static_cast<char>(std::tolower(c));
    columns.push_back(std::move(column));
  }

  report::Table table(headers);
  report::Series series{"lru_hit_ratio", columns, {}};
  for (std::size_t i = 0; i < results[0].points.size(); ++i) {
    const double percent = static_cast<double>(i + 1);
    std::vector<std::string> cells{report::fixed(percent, 0) + "%"};
    std::vector<double> values{percent};
    for (const auto& result : results) {
      cells.push_back(report::percent(result.points[i].hit_ratio));
      values.push_back(result.points[i].hit_ratio);
    }
    table.row(cells);
    series.add(values);
  }
  benchx::print_table(table);
  report::export_all({series}, "fig19");
  cli.dump_metrics();
  return 0;
}
